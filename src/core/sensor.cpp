#include "core/sensor.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace dnsbs::core {
namespace {

/// Below this batch size the shard bookkeeping costs more than it saves.
constexpr std::size_t kMinShardedBatch = 4096;

}  // namespace

Sensor::Sensor(SensorConfig config, const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
               const QuerierResolver& resolver)
    : config_(config),
      as_db_(as_db),
      geo_db_(geo_db),
      resolver_(resolver),
      dedup_(config.dedup_window),
      aggregator_(config.persistence_period) {}

void Sensor::ingest(const dns::QueryRecord& record) {
  if (dedup_.admit(record)) aggregator_.add(record);
}

void Sensor::ingest_all(std::span<const dns::QueryRecord> records) {
  const std::size_t threads =
      config_.threads != 0 ? config_.threads : util::configured_thread_count();
  // Sharding assumes no pre-existing window state (a pair first seen via
  // ingest() must keep suppressing sharded records), so only a fresh
  // sensor takes the parallel path.
  const bool fresh = dedup_.state_size() == 0 && aggregator_.originator_count() == 0;
  if (threads <= 1 || records.size() < kMinShardedBatch || !fresh ||
      util::in_parallel_region()) {
    aggregator_.reserve(records.size() / 8);
    for (const auto& r : records) ingest(r);
    return;
  }

  // Partition record indices by originator shard.  All records of one
  // originator (hence of one dedup pair) land in one shard, in their
  // original relative order, so per-shard dedup decisions match serial.
  const std::size_t shards = threads;
  const std::hash<net::IPv4Addr> hasher;
  std::vector<std::vector<std::uint32_t>> buckets(shards);
  for (auto& b : buckets) b.reserve(records.size() / shards + 16);
  for (std::size_t i = 0; i < records.size(); ++i) {
    buckets[hasher(records[i].originator) % shards].push_back(
        static_cast<std::uint32_t>(i));
  }

  struct Shard {
    Deduplicator dedup;
    OriginatorAggregator agg;
    Shard(util::SimTime window, util::SimTime period) : dedup(window), agg(period) {}
  };
  std::vector<Shard> shard_state;
  shard_state.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_state.emplace_back(config_.dedup_window, config_.persistence_period);
  }

  // Shards see only a subsequence of the clock, so each one finishes by
  // pruning up to the batch's final time; the merged dedup state then
  // retains exactly the entries a serial pass would (records are assumed
  // time-ordered, as dedup semantics already require).
  util::SimTime batch_end{};
  for (const auto& r : records) batch_end = std::max(batch_end, r.time);

  util::parallel_for(
      shards,
      [&](std::size_t s) {
        Shard& shard = shard_state[s];
        shard.agg.reserve(buckets[s].size() / 8);
        for (const std::uint32_t idx : buckets[s]) {
          const dns::QueryRecord& r = records[idx];
          if (shard.dedup.admit(r)) shard.agg.add(r);
        }
        shard.dedup.catch_up_prune(batch_end);
      },
      threads);

  // Ordered merge (shard 0..W-1) back into the sensor's own state, so
  // later ingest() calls continue from the same window state as serial.
  for (Shard& shard : shard_state) {
    dedup_.merge_from(std::move(shard.dedup));
    aggregator_.merge_from(std::move(shard.agg));
  }
}

std::vector<FeatureVector> Sensor::extract_features() const {
  const auto interesting =
      aggregator_.select_interesting(config_.min_queriers, config_.top_n);
  const DynamicFeatureExtractor dyn(as_db_, geo_db_, aggregator_);

  // Per-interval memoization: each unique querier is resolved and
  // keyword-classified exactly once, not once per footprint membership.
  QuerierClassificationCache cache(resolver_);
  cache.build(interesting, config_.threads);

  // Per-originator extraction is pure (cache and databases are read-only
  // after build), so rows compute in parallel; ordering follows the
  // footprint-sorted `interesting` list either way.
  return util::parallel_map(
      interesting.size(),
      [&](std::size_t i) {
        const OriginatorAggregate* agg = interesting[i];
        FeatureVector fv;
        fv.originator = agg->originator;
        fv.footprint = agg->unique_queriers();
        fv.statics = compute_static_features(*agg, cache);
        fv.dynamics = dyn.extract(*agg);
        return fv;
      },
      config_.threads);
}

std::vector<ClassifiedOriginator> classify_all(std::span<const FeatureVector> features,
                                               const ml::Classifier& model) {
  // Classifier::predict is const and stateless across calls, so rows
  // classify in parallel with row-ordered results.
  return util::parallel_map(features.size(), [&](std::size_t i) {
    ClassifiedOriginator c;
    c.features = features[i];
    c.predicted = static_cast<AppClass>(model.predict(features[i].row()));
    return c;
  });
}

}  // namespace dnsbs::core
