// Dynamic features: spatial and temporal structure of an originator's
// queriers (paper §III-C).
//
//   queries per querier   (temporal)  mean queries per unique querier
//   query persistence     (temporal)  fraction of the interval's 10-minute
//                                     periods in which the originator appears
//   local entropy         (spatial)   normalized entropy of querier /24s
//   global entropy        (spatial)   normalized entropy of querier /8s
//   unique ASes           (spatial)   queriers' ASes / ASes in interval
//   unique countries      (spatial)   queriers' countries / countries in interval
//   queriers per country  (spatial)   country diversity per querier
//   queriers per AS       (spatial)   AS diversity per querier
//
// Note on the last two: the paper's Table II reports values like 0.006 for
// an originator with tens of thousands of queriers, i.e. the reported
// quantity is countries (ASes) normalized by queriers, not the raw
// queriers/country ratio the prose suggests.  We reproduce the table's
// quantity and keep the paper's feature names.
#pragma once

#include <array>
#include <string_view>

#include "core/aggregate.hpp"
#include "netdb/as_db.hpp"
#include "netdb/geo_db.hpp"
#include "util/flat_hash.hpp"

namespace dnsbs::core {

inline constexpr std::size_t kDynamicFeatureCount = 8;

enum class DynamicFeature : std::size_t {
  kQueriesPerQuerier = 0,
  kPersistence,
  kLocalEntropy,
  kGlobalEntropy,
  kUniqueAs,
  kUniqueCountries,
  kQueriersPerCountry,
  kQueriersPerAs,
};

using DynamicFeatures = std::array<double, kDynamicFeatureCount>;

std::array<std::string_view, kDynamicFeatureCount> dynamic_feature_names() noexcept;

/// Extracts dynamic features for originators of one measurement interval.
/// Construction takes a first pass over all aggregates to learn the
/// interval-wide AS and country populations used as normalizers; the same
/// pass memoizes each unique querier's AS/country so extract() never
/// repeats a prefix-trie lookup for a querier shared by many originators.
class DynamicFeatureExtractor {
 public:
  DynamicFeatureExtractor(const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                          const OriginatorAggregator& interval);

  DynamicFeatures extract(const OriginatorAggregate& agg) const;

  std::size_t interval_as_count() const noexcept { return interval_as_count_; }
  std::size_t interval_country_count() const noexcept { return interval_country_count_; }

 private:
  /// Memoized querier identity: AS and country, resolved once per interval.
  struct QuerierGeo {
    netdb::Asn asn{};
    netdb::CountryCode cc{};
    bool has_asn = false;
    bool has_cc = false;
  };

  QuerierGeo lookup_geo(net::IPv4Addr querier) const;

  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  util::FlatMap<net::IPv4Addr, QuerierGeo> geo_cache_;
  std::size_t interval_as_count_;
  std::size_t interval_country_count_;
  std::size_t interval_periods_;
};

}  // namespace dnsbs::core
