#include "core/federation.hpp"

#include "util/binio.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace dnsbs::core {
namespace {

// Deterministic: one inc per export/import call, functions of the
// federation command sequence alone.
util::MetricCounter& g_exports = util::metrics_counter("dnsbs.federation.exports");
util::MetricCounter& g_imports = util::metrics_counter("dnsbs.federation.imports");

void write_config_echo(const SensorConfig& config, util::BinaryWriter& out) {
  out.u64(config.min_queriers);
  out.u64(config.top_n);
  out.i64(config.dedup_window.secs());
  out.i64(config.persistence_period.secs());
  out.u8(static_cast<std::uint8_t>(config.querier_state));
  out.u32(config.sketch_promote_threshold);
  out.u8(config.sketch_precision);
}

bool config_echo_matches(const SensorConfig& config, util::BinaryReader& in) {
  bool match = in.u64() == config.min_queriers;
  match &= in.u64() == config.top_n;
  match &= in.i64() == config.dedup_window.secs();
  match &= in.i64() == config.persistence_period.secs();
  match &= in.u8() == static_cast<std::uint8_t>(config.querier_state);
  match &= in.u32() == config.sketch_promote_threshold;
  match &= in.u8() == config.sketch_precision;
  if (!match) in.fail();
  return in.ok();
}

}  // namespace

void export_sensor_state(const Sensor& sensor, util::BinaryWriter& out) {
  out.u32(kFederationMagic);
  out.u32(kFederationVersion);
  write_config_echo(sensor.config(), out);
  sensor.save_state(out);
  g_exports.inc();
}

bool import_sensor_state(util::BinaryReader& in, Sensor& into) {
  if (in.u32() != kFederationMagic || in.u32() != kFederationVersion) {
    in.fail();
    return false;
  }
  if (!config_echo_matches(into.config(), in)) return false;
  if (!into.merge_state(in)) return false;
  g_imports.inc();
  return true;
}

FederatedSensorPool::FederatedSensorPool(std::size_t shards, const SensorConfig& config,
                                         const netdb::AsDb& as_db,
                                         const netdb::GeoDb& geo_db,
                                         const QuerierResolver& resolver)
    : threads_(config.threads != 0 ? config.threads : util::configured_thread_count()) {
  if (shards == 0) shards = 1;
  // Shard sensors run single-threaded: the pool parallelizes across
  // shards, and nested sharding would only re-partition an already
  // originator-disjoint slice.
  SensorConfig shard_config = config;
  shard_config.threads = 1;
  sensors_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    sensors_.push_back(std::make_unique<Sensor>(shard_config, as_db, geo_db, resolver));
  }
}

void FederatedSensorPool::ingest_all(std::span<const dns::QueryRecord> records) {
  const std::size_t shards = sensors_.size();
  if (shards == 1) {
    for (const auto& r : records) sensors_[0]->ingest(r);
    sensors_[0]->publish_metrics();
    return;
  }
  std::vector<std::vector<std::uint32_t>> buckets(shards);
  for (auto& b : buckets) b.reserve(records.size() / shards + 16);
  for (std::size_t i = 0; i < records.size(); ++i) {
    buckets[federation_shard(records[i].originator, shards)].push_back(
        static_cast<std::uint32_t>(i));
  }
  util::parallel_for(
      shards,
      [&](std::size_t s) {
        Sensor& sensor = *sensors_[s];
        for (const std::uint32_t idx : buckets[s]) sensor.ingest(records[idx]);
      },
      threads_);
  for (auto& sensor : sensors_) sensor->publish_metrics();
}

void FederatedSensorPool::merge_into(Sensor& coordinator) {
  std::size_t extra_originators = 0;
  std::size_t extra_pairs = 0;
  for (const auto& sensor : sensors_) {
    extra_originators += sensor->aggregator().originator_count();
    extra_pairs += sensor->dedup().state_size();
  }
  coordinator.reserve_for_merge(extra_originators, extra_pairs);
  for (auto& sensor : sensors_) coordinator.merge_from(std::move(*sensor));
}

}  // namespace dnsbs::core
