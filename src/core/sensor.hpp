// The end-to-end backscatter sensor (paper Figure 2, classification side):
// query stream -> dedup -> per-originator aggregation -> interesting
// selection -> feature extraction -> (optional) classification.
//
// One Sensor instance covers one measurement interval at one authority;
// long-running studies build a Sensor per day/week window (see
// analysis::IntervalSeries).
#pragma once

#include <memory>
#include <vector>

#include "core/aggregate.hpp"
#include "core/dedup.hpp"
#include "core/feature_engine.hpp"
#include "core/feature_vector.hpp"
#include "ml/classifier.hpp"
#include "util/metrics.hpp"

namespace dnsbs::core {

struct SensorConfig {
  /// Analyzability threshold: minimum unique queriers (paper: 20).
  std::size_t min_queriers = 20;
  /// Keep only the N largest footprints; 0 = unlimited (paper: top-10000).
  std::size_t top_n = 10000;
  /// Duplicate suppression window (paper: 30 s).
  util::SimTime dedup_window = util::SimTime::seconds(30);
  /// Persistence bucket (paper: 10 minutes).
  util::SimTime persistence_period = util::SimTime::minutes(10);
  /// Worker threads for bulk ingest and feature extraction; 0 defers to
  /// util::configured_thread_count() (the DNSBS_THREADS knob).  Output is
  /// byte-identical for every setting.
  std::size_t threads = 0;
  /// Querier-cardinality state: exact histograms (byte-identical legacy
  /// behavior) or bounded-memory mergeable sketches (see aggregate.hpp).
  QuerierStateMode querier_state = QuerierStateMode::kExact;
  /// Exact-histogram size at which an originator promotes to sketches
  /// (sketch mode only).
  std::uint32_t sketch_promote_threshold = 64;
  /// HyperLogLog precision for promoted originators (sketch mode only).
  std::uint8_t sketch_precision = util::HllSketch::kDefaultPrecision;

  QuerierSketchConfig sketch_config() const noexcept {
    return QuerierSketchConfig{querier_state, sketch_promote_threshold, sketch_precision};
  }
};

class Sensor {
 public:
  Sensor(SensorConfig config, const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
         const QuerierResolver& resolver);

  /// Feeds one reverse-query observation (records should arrive roughly
  /// time-ordered, as they do from a capture point).
  void ingest(const dns::QueryRecord& record);

  /// Bulk ingest.  On a fresh sensor with multiple threads configured,
  /// records are sharded by hash(originator) so dedup + aggregation run
  /// per-shard in parallel and merge afterwards; every (querier,
  /// originator) pair lives in exactly one shard, so the result is
  /// identical to serial ingestion.
  void ingest_all(std::span<const dns::QueryRecord> records);

  /// Selects interesting originators and computes their feature vectors,
  /// ordered by footprint descending.  Incremental: repeated calls reuse
  /// cached rows for originators whose aggregates (and the interval-wide
  /// normalizers) haven't changed, byte-identical to a full recompute.
  /// Logically const — the mutable extraction cache is an implementation
  /// detail invisible in the returned rows.
  std::vector<FeatureVector> extract_features() const;

  /// Installs a shared extraction cache (querier interner + carry-forward
  /// rows), letting consecutive windows reuse resolved querier identities
  /// and unchanged rows.  Call before the first extract_features().
  /// Sharing assumes the resolver and AS/geo databases are stable for the
  /// cache's lifetime (see feature_engine.hpp).
  void set_feature_cache(std::shared_ptr<FeatureExtractionCache> cache);

  /// Publishes this sensor's pending tallies (dedup admitted/suppressed,
  /// aggregate gauges) to the process-wide registry, then snapshots it.
  /// The per-record ingest path deliberately never touches the registry —
  /// counts are reconciled here and at the end of ingest_all — so the
  /// snapshot is current as of the call, at zero hot-path cost.
  util::MetricsSnapshot snapshot_metrics() const;

  const OriginatorAggregator& aggregator() const noexcept { return aggregator_; }
  const Deduplicator& dedup() const noexcept { return dedup_; }
  const SensorConfig& config() const noexcept { return config_; }

  /// Checkpoints the window state (dedup + aggregator) for a later
  /// load_state() into a Sensor built with the same config.  Does NOT
  /// serialize the extraction cache — the daemon checkpoints the shared
  /// cache once, not per window.  Callers must publish_metrics() first if
  /// registry deltas matter (save_state does it to pin the published
  /// watermarks to the serialized tallies).
  void save_state(util::BinaryWriter& out) const;

  /// Restores dedup + aggregator state.  The published watermarks are set
  /// to the restored tallies: the uninterrupted process already pushed
  /// those counts to the registry, and the registry snapshot is restored
  /// separately, so re-publishing them here would double-count.  Resets
  /// the lazily-built engine so the next extract_features() stamps a fresh
  /// interval token.  Returns false on config mismatch or corrupt stream.
  bool load_state(util::BinaryReader& in);

  /// Federation: folds another sensor's window state (same config) into
  /// this one.  For originator-disjoint sources (the export-state
  /// `--shards` split) the result is byte-identical to one sensor having
  /// ingested the whole stream; for overlapping sources (per-authority
  /// splits) exact mode is content-lossless and sketch mode bounded-error.
  /// Invalidates cached feature rows; the next extract_features() sees the
  /// merged state.
  void merge_from(Sensor&& other);

  /// Reads a save_state() stream produced by a sensor with the same
  /// config and merges it into this one (load into a scratch sensor +
  /// merge_from).  Returns false on config mismatch or corrupt stream,
  /// leaving this sensor untouched.
  bool merge_state(util::BinaryReader& in);

  /// Pre-sizes the aggregate and dedup tables for an N-way merge so the
  /// coordinator grows each table once, not per source.
  void reserve_for_merge(std::size_t extra_originators, std::size_t extra_dedup_pairs) {
    aggregator_.reserve(aggregator_.originator_count() + extra_originators);
    dedup_.reserve(dedup_.state_size() + extra_dedup_pairs);
  }

  /// Pushes tallies accumulated since the last publish into the registry
  /// (idempotent; const because snapshot_metrics() is a read operation
  /// from the caller's perspective).  Public so the streaming driver can
  /// reconcile counts at window close without taking a full snapshot.
  void publish_metrics() const;

 private:
  SensorConfig config_;
  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  const QuerierResolver& resolver_;
  Deduplicator dedup_;
  OriginatorAggregator aggregator_;
  mutable std::uint64_t published_admitted_ = 0;
  mutable std::uint64_t published_suppressed_ = 0;
  // Incremental extraction state (lazily created; mutable because
  // extract_features() is logically const).
  mutable std::shared_ptr<FeatureExtractionCache> feature_cache_;
  mutable std::unique_ptr<FeatureEngine> engine_;
  mutable std::vector<FeatureVector> cached_rows_;
  mutable std::uint64_t rows_at_mutation_ = 0;
  mutable bool rows_cached_ = false;
};

/// A feature vector plus the model's verdict.
struct ClassifiedOriginator {
  FeatureVector features;
  AppClass predicted = AppClass::kScan;
};

/// Runs a trained classifier over extracted feature vectors.
std::vector<ClassifiedOriginator> classify_all(std::span<const FeatureVector> features,
                                               const ml::Classifier& model);

}  // namespace dnsbs::core
