#include "core/dedup.hpp"

#include <algorithm>

namespace dnsbs::core {

bool Deduplicator::admit(const dns::QueryRecord& record) {
  const PairKey key{(static_cast<std::uint64_t>(record.querier.value()) << 32) |
                    record.originator.value()};
  const auto [it, inserted] = last_seen_.try_emplace(key, record.time);
  bool pass = true;
  if (!inserted) {
    if (record.time - it->second < window_ && record.time >= it->second) {
      pass = false;
    } else {
      it->second = record.time;
    }
  }
  pass ? ++admitted_ : ++suppressed_;
  // Periodically drop stale entries so long runs don't accumulate state
  // for queriers that went quiet.
  catch_up_prune(record.time);
  return pass;
}

void Deduplicator::catch_up_prune(util::SimTime now) {
  // Prunes trigger on fixed 2*window boundaries of the virtual clock, not
  // on stream-relative gaps: the retained entry set is then a function of
  // the record times alone, so shard-local subsequences converge to the
  // same state as a serial pass (the stale entries a missed boundary would
  // have dropped are caught up at the shard's next boundary or by the
  // sensor's final catch_up_prune).
  const std::int64_t stride = 2 * window_.secs();
  if (stride <= 0) return;
  const std::int64_t interval = now.secs() / stride;
  if (interval > last_prune_interval_) {
    prune(util::SimTime::seconds(interval * stride));
    last_prune_interval_ = interval;
  }
}

void Deduplicator::merge_from(Deduplicator&& other) {
  last_seen_.reserve(last_seen_.size() + other.last_seen_.size());
  for (const auto& [key, time] : other.last_seen_) {
    auto [it, inserted] = last_seen_.try_emplace(key, time);
    if (!inserted) it->second = std::max(it->second, time);
  }
  admitted_ += other.admitted_;
  suppressed_ += other.suppressed_;
  last_prune_interval_ = std::max(last_prune_interval_, other.last_prune_interval_);
  other.last_seen_.clear();
  other.admitted_ = 0;
  other.suppressed_ = 0;
}

void Deduplicator::prune(util::SimTime now) {
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (now - it->second >= window_) {
      it = last_seen_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dnsbs::core
