#include "core/dedup.hpp"

namespace dnsbs::core {

bool Deduplicator::admit(const dns::QueryRecord& record) {
  const PairKey key{(static_cast<std::uint64_t>(record.querier.value()) << 32) |
                    record.originator.value()};
  const auto [it, inserted] = last_seen_.try_emplace(key, record.time);
  bool pass = true;
  if (!inserted) {
    if (record.time - it->second < window_ && record.time >= it->second) {
      pass = false;
    } else {
      it->second = record.time;
    }
  }
  pass ? ++admitted_ : ++suppressed_;
  // Periodically drop stale entries so long runs don't accumulate state
  // for queriers that went quiet.
  if (record.time - last_prune_ > window_ + window_) {
    prune(record.time);
    last_prune_ = record.time;
  }
  return pass;
}

void Deduplicator::prune(util::SimTime now) {
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (now - it->second >= window_) {
      it = last_seen_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dnsbs::core
