#include "core/dedup.hpp"

#include <algorithm>

#include "util/binio.hpp"
#include "util/metrics.hpp"

namespace dnsbs::core {

namespace {
// Prune cadence depends on how records are sharded (each shard crosses
// clock boundaries on its own subsequence), so these are sched series —
// outside the determinism contract.  The *retained entry set* stays
// byte-identical; only the work done to get there varies.  admitted/
// suppressed are deterministic and published by the Sensor in bulk.
util::MetricCounter& g_prunes = util::metrics_counter("dnsbs.dedup.prunes", /*sched=*/true);
util::MetricCounter& g_drains =
    util::metrics_counter("dnsbs.dedup.bucket_drains", /*sched=*/true);
util::MetricCounter& g_expired = util::metrics_counter("dnsbs.dedup.expired", /*sched=*/true);
util::MetricCounter& g_requeued = util::metrics_counter("dnsbs.dedup.requeued", /*sched=*/true);
}  // namespace

bool Deduplicator::admit(const dns::QueryRecord& record) {
  const std::uint64_t key = (static_cast<std::uint64_t>(record.querier.value()) << 32) |
                            record.originator.value();
  const auto [it, inserted] = last_seen_.try_emplace(key, record.time);
  bool pass = true;
  if (!inserted) {
    if (record.time - it->second < window_ && record.time >= it->second) {
      pass = false;
    } else {
      it->second = record.time;
      queue_expiry(key, record.time);
    }
  } else {
    queue_expiry(key, record.time);
  }
  pass ? ++admitted_ : ++suppressed_;
  // Periodically drop stale entries so long runs don't accumulate state
  // for queriers that went quiet.
  catch_up_prune(record.time);
  return pass;
}

void Deduplicator::queue_expiry(std::uint64_t key, util::SimTime time) {
  if (window_.secs() <= 0) return;  // no pruning without a window
  // Clamp below the drained frontier: a backdated write lands in the next
  // drainable bucket and the exact re-check at drain time decides.
  const std::int64_t bucket = std::max(bucket_of(time), next_drain_);
  expiry_[bucket].push_back(key);
}

void Deduplicator::catch_up_prune(util::SimTime now) {
  // Prunes trigger on fixed 2*window boundaries of the virtual clock, not
  // on stream-relative gaps: the retained entry set is then a function of
  // the record times alone, so shard-local subsequences converge to the
  // same state as a serial pass (the stale entries a missed boundary would
  // have dropped are caught up at the shard's next boundary or by the
  // sensor's final catch_up_prune).
  const std::int64_t stride = 2 * window_.secs();
  if (stride <= 0) return;
  const std::int64_t interval = now.secs() / stride;
  if (interval > last_prune_interval_) {
    prune(util::SimTime::seconds(interval * stride));
    last_prune_interval_ = interval;
  }
}

void Deduplicator::merge_from(Deduplicator&& other) {
  last_seen_.merge_from(std::move(other.last_seen_),
                        [](util::SimTime& mine, util::SimTime&& theirs) {
                          mine = std::max(mine, theirs);
                        });
  expiry_.merge_from(std::move(other.expiry_),
                     [](std::vector<std::uint64_t>& mine,
                        std::vector<std::uint64_t>&& theirs) {
                       mine.insert(mine.end(), theirs.begin(), theirs.end());
                     });
  next_drain_ = std::max(next_drain_, other.next_drain_);
  admitted_ += other.admitted_;
  suppressed_ += other.suppressed_;
  last_prune_interval_ = std::max(last_prune_interval_, other.last_prune_interval_);
  other.next_drain_ = 0;
  other.admitted_ = 0;
  other.suppressed_ = 0;
}

void Deduplicator::save(util::BinaryWriter& out) const {
  out.i64(window_.secs());
  out.u64(last_seen_.capacity());
  out.u64(last_seen_.size());
  last_seen_.for_each_slot([&out](std::size_t slot, std::uint64_t key, util::SimTime t) {
    out.u64(slot);
    out.u64(key);
    out.i64(t.secs());
  });
  out.u64(expiry_.capacity());
  out.u64(expiry_.size());
  expiry_.for_each_slot(
      [&out](std::size_t slot, std::int64_t bucket, const std::vector<std::uint64_t>& keys) {
        out.u64(slot);
        out.i64(bucket);
        out.u64(keys.size());
        for (const std::uint64_t k : keys) out.u64(k);
      });
  out.i64(next_drain_);
  out.i64(last_prune_interval_);
  out.u64(admitted_);
  out.u64(suppressed_);
}

bool Deduplicator::load(util::BinaryReader& in) {
  if (in.i64() != window_.secs()) return false;
  const std::uint64_t seen_cap = in.u64();
  const std::uint64_t seen_n = in.u64();
  if (!in.ok() || seen_n > seen_cap || !last_seen_.restore_layout(seen_cap)) return false;
  for (std::uint64_t i = 0; i < seen_n; ++i) {
    const std::uint64_t slot = in.u64();
    const std::uint64_t key = in.u64();
    const util::SimTime t = util::SimTime::seconds(in.i64());
    if (!in.ok() || !last_seen_.place(slot, key, t)) return false;
  }
  const std::uint64_t exp_cap = in.u64();
  const std::uint64_t exp_n = in.u64();
  if (!in.ok() || exp_n > exp_cap || !expiry_.restore_layout(exp_cap)) return false;
  for (std::uint64_t i = 0; i < exp_n; ++i) {
    const std::uint64_t slot = in.u64();
    const std::int64_t bucket = in.i64();
    const std::uint64_t count = in.u64();
    // Cap before reserving: a corrupt length must not become a huge
    // allocation (the stream would fail on read anyway).
    if (!in.ok() || count > (std::uint64_t{1} << 30)) return false;
    std::vector<std::uint64_t> keys;
    keys.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) keys.push_back(in.u64());
    if (!in.ok() || !expiry_.place(slot, bucket, std::move(keys))) return false;
  }
  next_drain_ = in.i64();
  last_prune_interval_ = in.i64();
  admitted_ = in.u64();
  suppressed_ = in.u64();
  return in.ok();
}

void Deduplicator::prune(util::SimTime now) {
  // Retention rule (unchanged): keep iff now - time < window, i.e. drop
  // time <= now - window.  `now` is a 2*window boundary, so the cutoff is
  // a multiple of window and every bucket up to cutoff/window is entirely
  // expired: draining exactly those buckets reproduces the full-walk
  // result without touching live entries.
  const std::int64_t w = window_.secs();
  const std::int64_t cutoff_bucket = (now.secs() - w) / w;

  // Collect the drained buckets first: live-but-refreshed keys re-queue
  // into later buckets while we iterate.
  std::vector<std::pair<std::int64_t, std::vector<std::uint64_t>>> drained;
  for (auto& [bucket, keys] : expiry_) {
    if (bucket <= cutoff_bucket) drained.emplace_back(bucket, std::move(keys));
  }
  for (const auto& [bucket, keys] : drained) expiry_.erase(bucket);
  next_drain_ = std::max(next_drain_, cutoff_bucket + 1);

  g_prunes.inc();
  g_drains.add(drained.size());
  std::uint64_t expired = 0;
  std::uint64_t requeued = 0;
  for (auto& [bucket, keys] : drained) {
    for (const std::uint64_t key : keys) {
      const auto* entry = last_seen_.find(key);
      if (entry == nullptr) continue;  // already erased via an earlier queue slot
      if (now - entry->second >= window_) {
        last_seen_.erase(key);
        ++expired;
      } else {
        // Refreshed since this queue entry was written; its newer queue
        // slot may itself have been drained in this same pass, so re-queue
        // under the (clamped) bucket of its current time.
        queue_expiry(key, entry->second);
        ++requeued;
      }
    }
  }
  g_expired.add(expired);
  g_requeued.add(requeued);
}

}  // namespace dnsbs::core
