#include "core/querier_cache.hpp"

#include <vector>

#include "core/aggregate.hpp"
#include "util/parallel.hpp"

namespace dnsbs::core {

void QuerierClassificationCache::build(
    std::span<const OriginatorAggregate* const> aggregates, std::size_t threads) {
  // Deterministic unique-querier list: first-seen order over the (already
  // footprint-sorted) aggregate list.
  std::vector<net::IPv4Addr> unique;
  util::FlatSet<net::IPv4Addr> seen;
  for (const OriginatorAggregate* agg : aggregates) {
    seen.reserve(seen.size() + agg->querier_queries.size());
    for (const auto& [querier, count] : agg->querier_queries) {
      if (seen.insert(querier)) unique.push_back(querier);
    }
  }

  // Resolution + keyword classification is pure, so unique queriers fan
  // out across the worker pool; results land index-ordered.
  const std::vector<QuerierCategory> classified = util::parallel_map(
      unique.size(),
      [&](std::size_t i) { return classify_querier(base_.resolve(unique[i])); },
      threads);

  categories_.clear();
  categories_.reserve(unique.size());
  for (std::size_t i = 0; i < unique.size(); ++i) {
    categories_.try_emplace(unique[i], classified[i]);
  }
}

QuerierCategory QuerierClassificationCache::category(net::IPv4Addr querier) const {
  if (const auto* cached = categories_.find(querier)) return cached->second;
  return classify_querier(base_.resolve(querier));
}

}  // namespace dnsbs::core
