#include "core/querier_cache.hpp"

#include <vector>

#include "core/aggregate.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace dnsbs::core {

namespace {
// builds/entries are per-interval (cold); fallbacks count category() calls
// that missed the built set — a hot-loop branch, but rare by construction
// (only callers mixing aggregates hit it), so the bump is affordable and
// a growing value is itself the signal the cache is being bypassed.
// Lookups are NOT counted per call: the feature extractor publishes the
// batched total (sum of footprints) instead.
util::MetricCounter& g_builds = util::metrics_counter("dnsbs.cache.querier.builds");
util::MetricCounter& g_entries = util::metrics_counter("dnsbs.cache.querier.entries");
util::MetricCounter& g_fallbacks = util::metrics_counter("dnsbs.cache.querier.fallbacks");
util::MetricHistogram& g_build_ns = util::metrics_histogram("dnsbs.cache.querier.build_ns");
}  // namespace

void QuerierClassificationCache::build(
    std::span<const OriginatorAggregate* const> aggregates, std::size_t threads) {
  const std::uint64_t t0 = util::metrics_now_ns();
  // Deterministic unique-querier list: first-seen order over the (already
  // footprint-sorted) aggregate list.
  std::vector<net::IPv4Addr> unique;
  util::FlatSet<net::IPv4Addr> seen;
  for (const OriginatorAggregate* agg : aggregates) {
    seen.reserve(seen.size() + agg->querier_queries.size());
    for (const auto& [querier, count] : agg->querier_queries) {
      if (seen.insert(querier)) unique.push_back(querier);
    }
  }

  // Resolution + keyword classification is pure, so unique queriers fan
  // out across the worker pool; results land index-ordered.
  const std::vector<QuerierCategory> classified = util::parallel_map(
      unique.size(),
      [&](std::size_t i) { return classify_querier(base_.resolve(unique[i])); },
      threads);

  categories_.clear();
  categories_.reserve(unique.size());
  for (std::size_t i = 0; i < unique.size(); ++i) {
    categories_.try_emplace(unique[i], classified[i]);
  }
  g_builds.inc();
  g_entries.add(unique.size());
  g_build_ns.record(util::metrics_now_ns() - t0);
}

QuerierCategory QuerierClassificationCache::category(net::IPv4Addr querier) const {
  if (const auto* cached = categories_.find(querier)) return cached->second;
  g_fallbacks.inc();
  return classify_querier(base_.resolve(querier));
}

}  // namespace dnsbs::core
