// Duplicate-query suppression.
//
// Paper §III-C: "To avoid excessive skew of querier rate estimates due to
// queriers that do not follow DNS timeout rules, we eliminate duplicate
// queries from the same querier in a 30 s window."  Deduplicator passes a
// record through iff the same (querier, originator) pair has not been seen
// within the window.  Records are expected in (roughly) time order; the
// window state is pruned as time advances to bound memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "dns/query_log.hpp"
#include "util/time.hpp"

namespace dnsbs::core {

class Deduplicator {
 public:
  explicit Deduplicator(util::SimTime window = util::SimTime::seconds(30))
      : window_(window) {}

  /// True if the record survives deduplication (first sighting of this
  /// (querier, originator) pair within the window).
  bool admit(const dns::QueryRecord& record);

  /// Folds another deduplicator's state (same window) into this one.
  /// Used by the sharded ingest path: shards are disjoint by originator,
  /// so (querier, originator) pair entries never collide and the merged
  /// window state matches a serial ingest.
  void merge_from(Deduplicator&& other);

  /// Applies any prune the clock has reached by `now`.  admit() calls this
  /// with every record time; a sharded ingest calls it on each shard with
  /// the batch's final time so the merged window state retains exactly the
  /// entries a serial pass over the same (time-ordered) records would.
  void catch_up_prune(util::SimTime now);

  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t suppressed() const noexcept { return suppressed_; }

  /// Entries currently tracked (diagnostic).
  std::size_t state_size() const noexcept { return last_seen_.size(); }

 private:
  struct PairKey {
    std::uint64_t packed;
    bool operator==(const PairKey&) const = default;
  };
  struct PairHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      std::uint64_t z = k.packed + 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  void prune(util::SimTime now);

  util::SimTime window_;
  std::unordered_map<PairKey, util::SimTime, PairHash> last_seen_;
  std::int64_t last_prune_interval_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace dnsbs::core
