// Duplicate-query suppression.
//
// Paper §III-C: "To avoid excessive skew of querier rate estimates due to
// queriers that do not follow DNS timeout rules, we eliminate duplicate
// queries from the same querier in a 30 s window."  Deduplicator passes a
// record through iff the same (querier, originator) pair has not been seen
// within the window.  Records are expected in (roughly) time order; the
// window state is pruned as time advances to bound memory.
//
// Pruning is amortized via bucketed expiry: every write of an entry's
// last-seen time also queues its key under the time's window-width bucket.
// A prune drains only the buckets that are entirely past the cutoff and
// re-checks each queued key against the live map, so the retained entry
// set is byte-identical to the old full-map walk while prune work is
// O(keys written) amortized instead of O(state) per boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dns/query_log.hpp"
#include "util/flat_hash.hpp"
#include "util/time.hpp"

namespace dnsbs::util {
class BinaryReader;
class BinaryWriter;
}  // namespace dnsbs::util

namespace dnsbs::core {

class Deduplicator {
 public:
  explicit Deduplicator(util::SimTime window = util::SimTime::seconds(30))
      : window_(window) {}

  /// True if the record survives deduplication (first sighting of this
  /// (querier, originator) pair within the window).
  bool admit(const dns::QueryRecord& record);

  /// Folds another deduplicator's state (same window) into this one.
  /// Used by the sharded ingest path: shards are disjoint by originator,
  /// so (querier, originator) pair entries never collide and the merged
  /// window state matches a serial ingest.
  void merge_from(Deduplicator&& other);

  /// Applies any prune the clock has reached by `now`.  admit() calls this
  /// with every record time; a sharded ingest calls it on each shard with
  /// the batch's final time so the merged window state retains exactly the
  /// entries a serial pass over the same (time-ordered) records would.
  void catch_up_prune(util::SimTime now);

  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t suppressed() const noexcept { return suppressed_; }

  /// Entries currently tracked (diagnostic).
  std::size_t state_size() const noexcept { return last_seen_.size(); }

  /// Pre-sizes the last-seen map for an expected pair count so an N-way
  /// federated merge does not rehash repeatedly mid-merge.
  void reserve(std::size_t expected_pairs) { last_seen_.reserve(expected_pairs); }

  /// Checkpoint round-trip.  The last-seen and expiry maps serialize
  /// slot-exactly (see FlatMap::for_each_slot): after load(), every future
  /// admit/prune sequence evolves bit-for-bit like the uninterrupted
  /// instance, which the daemon's byte-identical-restart contract needs.
  /// load() requires a Deduplicator constructed with the same window and
  /// fails (returns false) on a mismatch or corrupt stream.
  void save(util::BinaryWriter& out) const;
  bool load(util::BinaryReader& in);

 private:
  struct SplitMixHash {
    std::size_t operator()(std::uint64_t k) const noexcept {
      return static_cast<std::size_t>(k);  // FlatMap applies the SplitMix64 mix
    }
  };

  void prune(util::SimTime now);

  /// Queues `key` for expiry under the bucket of its (just written) time.
  void queue_expiry(std::uint64_t key, util::SimTime time);

  /// Bucket index covering `t`: ceil(t / window).  Bucket b holds times in
  /// ((b-1)*w, b*w]; prune cutoffs are multiples of w, so a bucket is
  /// either entirely expired or entirely live at every boundary.
  std::int64_t bucket_of(util::SimTime t) const noexcept {
    const std::int64_t w = window_.secs();
    return (t.secs() + w - 1) / w;
  }

  util::SimTime window_;
  util::FlatMap<std::uint64_t, util::SimTime, SplitMixHash> last_seen_;
  /// bucket index -> keys last written with a time in that bucket.
  util::FlatMap<std::int64_t, std::vector<std::uint64_t>> expiry_;
  /// Lowest bucket index not yet drained; late writes clamp to it so a
  /// backdated entry still expires at the next boundary.
  std::int64_t next_drain_ = 0;
  std::int64_t last_prune_interval_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace dnsbs::core
