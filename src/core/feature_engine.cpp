#include "core/feature_engine.hpp"

#include <algorithm>
#include <array>

#include "util/binio.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace dnsbs::core {

std::uint32_t FeatureExtractionCache::intern(net::IPv4Addr querier,
                                             std::optional<netdb::Asn> asn,
                                             std::optional<netdb::CountryCode> cc,
                                             QuerierCategory category) {
  const auto id = static_cast<std::uint32_t>(category_.size());
  qid_.try_emplace(querier, id);
  // Dense ids hand out the next integer on first sight; 0 is reserved for
  // "no mapping" on the AS/CC axes (function arguments are evaluated
  // before try_emplace runs, so size() is the pre-insert size).
  std::uint32_t as = 0;
  if (asn) {
    as = as_ids_.try_emplace(*asn, static_cast<std::uint32_t>(as_ids_.size() + 1))
             .first->second;
  }
  std::uint32_t ccid = 0;
  if (cc) {
    ccid = cc_ids_.try_emplace(cc->packed(), static_cast<std::uint32_t>(cc_ids_.size() + 1))
               .first->second;
  }
  const std::uint32_t s24 =
      s24_ids_.try_emplace(querier.slash24(), static_cast<std::uint32_t>(s24_ids_.size()))
          .first->second;
  as_id_.push_back(as);
  cc_id_.push_back(ccid);
  s24_id_.push_back(s24);
  s8_.push_back(static_cast<std::uint8_t>(querier.slash8()));
  category_.push_back(category);
  return id;
}

namespace {

constexpr std::uint64_t kMaxLoadLen = std::uint64_t{1} << 30;

template <typename K, typename WriteKey>
void save_id_map(util::BinaryWriter& out, const util::FlatMap<K, std::uint32_t>& map,
                 WriteKey&& write_key) {
  out.u64(map.capacity());
  out.u64(map.size());
  map.for_each_slot([&](std::size_t slot, const K& key, std::uint32_t id) {
    out.u64(slot);
    write_key(key);
    out.u32(id);
  });
}

template <typename K, typename ReadKey>
bool load_id_map(util::BinaryReader& in, util::FlatMap<K, std::uint32_t>& map,
                 ReadKey&& read_key) {
  const std::uint64_t cap = in.u64();
  const std::uint64_t n = in.u64();
  if (!in.ok() || n > cap || !map.restore_layout(cap)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t slot = in.u64();
    const K key = read_key();
    const std::uint32_t id = in.u32();
    if (!in.ok() || !map.place(slot, key, id)) return false;
  }
  return true;
}

bool load_u32_column(util::BinaryReader& in, std::vector<std::uint32_t>& column,
                     std::uint64_t n) {
  column.clear();
  column.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) column.push_back(in.u32());
  return in.ok();
}

}  // namespace

void FeatureExtractionCache::save(util::BinaryWriter& out) const {
  out.u64(interval_serial_);
  save_id_map(out, qid_, [&out](net::IPv4Addr q) { out.u32(q.value()); });
  // Columns (parallel arrays indexed by querier id).
  out.u64(category_.size());
  for (std::size_t id = 0; id < category_.size(); ++id) {
    out.u32(as_id_[id]);
    out.u32(cc_id_[id]);
    out.u32(s24_id_[id]);
    out.u8(s8_[id]);
    out.u8(static_cast<std::uint8_t>(category_[id]));
  }
  save_id_map(out, as_ids_, [&out](netdb::Asn a) { out.u32(a); });
  save_id_map(out, cc_ids_, [&out](std::uint16_t c) { out.u16(c); });
  save_id_map(out, s24_ids_, [&out](std::uint32_t s) { out.u32(s); });
  out.u64(rows_.capacity());
  out.u64(rows_.size());
  rows_.for_each_slot([&out](std::size_t slot, net::IPv4Addr addr, const RowEntry& e) {
    out.u64(slot);
    out.u32(addr.value());
    out.u64(e.interval_token);
    out.u64(e.mod_count);
    out.u64(e.total_queries);
    out.u64(e.period_count);
    out.u64(e.footprint);
    out.u64(e.norm_periods);
    out.u32(e.norm_as);
    out.u32(e.norm_cc);
    out.u64(e.qids.size());  // counts is parallel: same length
    for (const std::uint32_t q : e.qids) out.u32(q);
    for (const std::uint32_t c : e.counts) out.u32(c);
    out.u32(e.row.originator.value());
    out.u64(e.row.footprint);
    for (const double v : e.row.statics) out.f64(v);
    for (const double v : e.row.dynamics) out.f64(v);
  });
}

bool FeatureExtractionCache::load(util::BinaryReader& in) {
  interval_serial_ = in.u64();
  if (!load_id_map(in, qid_, [&in] { return net::IPv4Addr{in.u32()}; })) return false;
  const std::uint64_t queriers = in.u64();
  if (!in.ok() || queriers > kMaxLoadLen) return false;
  as_id_.clear();
  cc_id_.clear();
  s24_id_.clear();
  s8_.clear();
  category_.clear();
  as_id_.reserve(queriers);
  cc_id_.reserve(queriers);
  s24_id_.reserve(queriers);
  s8_.reserve(queriers);
  category_.reserve(queriers);
  for (std::uint64_t id = 0; id < queriers; ++id) {
    as_id_.push_back(in.u32());
    cc_id_.push_back(in.u32());
    s24_id_.push_back(in.u32());
    s8_.push_back(in.u8());
    const std::uint8_t cat = in.u8();
    if (cat >= kQuerierCategoryCount) return false;
    category_.push_back(static_cast<QuerierCategory>(cat));
  }
  if (!load_id_map(in, as_ids_, [&in] { return netdb::Asn{in.u32()}; })) return false;
  if (!load_id_map(in, cc_ids_, [&in] { return in.u16(); })) return false;
  if (!load_id_map(in, s24_ids_, [&in] { return in.u32(); })) return false;
  const std::uint64_t cap = in.u64();
  const std::uint64_t n = in.u64();
  if (!in.ok() || n > cap || !rows_.restore_layout(cap)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t slot = in.u64();
    const net::IPv4Addr addr{in.u32()};
    RowEntry e;
    e.interval_token = in.u64();
    e.mod_count = in.u64();
    e.total_queries = in.u64();
    e.period_count = in.u64();
    e.footprint = in.u64();
    e.norm_periods = in.u64();
    e.norm_as = in.u32();
    e.norm_cc = in.u32();
    const std::uint64_t qn = in.u64();
    if (!in.ok() || qn > kMaxLoadLen) return false;
    if (!load_u32_column(in, e.qids, qn) || !load_u32_column(in, e.counts, qn)) return false;
    e.row.originator = net::IPv4Addr{in.u32()};
    e.row.footprint = in.u64();
    for (double& v : e.row.statics) v = in.f64();
    for (double& v : e.row.dynamics) v = in.f64();
    if (!in.ok() || !rows_.place(slot, addr, std::move(e))) return false;
  }
  return in.ok();
}

void FeatureEngine::Scratch::ensure(std::size_t s24_n, std::size_t as_n, std::size_t cc_n) {
  if (stamp24.size() < s24_n) {
    stamp24.resize(s24_n, 0);
    pos24.resize(s24_n, 0);
  }
  if (stamp8.empty()) {
    stamp8.resize(256, 0);
    pos8.resize(256, 0);
  }
  if (stamp_as.size() < as_n + 1) stamp_as.resize(as_n + 1, 0);
  if (stamp_cc.size() < cc_n + 1) stamp_cc.resize(cc_n + 1, 0);
}

FeatureEngine::FeatureEngine(const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                             const QuerierResolver& resolver,
                             std::shared_ptr<FeatureExtractionCache> cache)
    : as_db_(as_db),
      geo_db_(geo_db),
      resolver_(resolver),
      cache_(std::move(cache)),
      token_(cache_->next_interval_token()) {}

FeatureVector FeatureEngine::compute_row(const FeatureExtractionCache::RowEntry& entry,
                                         net::IPv4Addr originator, Scratch& s) const {
  const FeatureExtractionCache& cache = *cache_;
  FeatureVector fv;
  fv.originator = originator;
  const std::size_t k = entry.qids.size();
  // Cardinality-shaped outputs read the aggregate's footprint (the sketch
  // estimate once promoted); sample-shaped reductions below stream over
  // the k retained (qid, count) columns.  Exact mode: footprint == k.
  fv.footprint = entry.footprint;
  if (k == 0) return fv;

  // One streaming pass over the querier-id column gathers everything the
  // eight dynamic features and fourteen static fractions need.  Bucket
  // membership is epoch-stamped: a stale stamp means "first touch this
  // row", so the scratch arrays never need clearing between rows.
  std::array<std::uint32_t, kQuerierCategoryCount> category_counts{};
  ++s.epoch;
  s.counts24.clear();
  s.counts8.clear();
  std::size_t distinct_as = 0, distinct_cc = 0;
  for (std::size_t m = 0; m < k; ++m) {
    const std::uint32_t qid = entry.qids[m];
    ++category_counts[static_cast<std::size_t>(cache.category(qid))];
    const std::uint32_t b24 = cache.s24_id(qid);
    if (s.stamp24[b24] != s.epoch) {
      s.stamp24[b24] = s.epoch;
      s.pos24[b24] = static_cast<std::uint32_t>(s.counts24.size());
      s.counts24.push_back(1);
    } else {
      ++s.counts24[s.pos24[b24]];
    }
    const std::uint8_t b8 = cache.s8(qid);
    if (s.stamp8[b8] != s.epoch) {
      s.stamp8[b8] = s.epoch;
      s.pos8[b8] = static_cast<std::uint32_t>(s.counts8.size());
      s.counts8.push_back(1);
    } else {
      ++s.counts8[s.pos8[b8]];
    }
    const std::uint32_t as = cache.as_id(qid);
    if (as != 0 && s.stamp_as[as] != s.epoch) {
      s.stamp_as[as] = s.epoch;
      ++distinct_as;
    }
    const std::uint32_t cc = cache.cc_id(qid);
    if (cc != 0 && s.stamp_cc[cc] != s.epoch) {
      s.stamp_cc[cc] = s.epoch;
      ++distinct_cc;
    }
  }

  const double queriers = static_cast<double>(k);
  // Integer tallies divided once: identical to summing 1.0 per member and
  // dividing (both are exact below 2^53), so rows match the reference
  // tally_static_features path bit-for-bit.
  for (std::size_t c = 0; c < kQuerierCategoryCount; ++c) {
    fv.statics[c] = static_cast<double>(category_counts[c]) / queriers;
  }
  DynamicFeatures& f = fv.dynamics;
  f[static_cast<std::size_t>(DynamicFeature::kQueriesPerQuerier)] =
      static_cast<double>(entry.total_queries) / static_cast<double>(entry.footprint);
  f[static_cast<std::size_t>(DynamicFeature::kPersistence)] =
      periods_norm_ == 0 ? 0.0
                         : static_cast<double>(entry.period_count) /
                               static_cast<double>(periods_norm_);
  f[static_cast<std::size_t>(DynamicFeature::kLocalEntropy)] =
      util::normalized_entropy(std::span<const std::size_t>(s.counts24));
  f[static_cast<std::size_t>(DynamicFeature::kGlobalEntropy)] =
      util::normalized_entropy(std::span<const std::size_t>(s.counts8));
  f[static_cast<std::size_t>(DynamicFeature::kUniqueAs)] =
      as_norm_ == 0 ? 0.0
                    : static_cast<double>(distinct_as) / static_cast<double>(as_norm_);
  f[static_cast<std::size_t>(DynamicFeature::kUniqueCountries)] =
      cc_norm_ == 0 ? 0.0
                    : static_cast<double>(distinct_cc) / static_cast<double>(cc_norm_);
  f[static_cast<std::size_t>(DynamicFeature::kQueriersPerCountry)] =
      static_cast<double>(distinct_cc) / queriers;
  f[static_cast<std::size_t>(DynamicFeature::kQueriersPerAs)] =
      static_cast<double>(distinct_as) / queriers;
  return fv;
}

std::vector<FeatureVector> FeatureEngine::extract(
    const OriginatorAggregator& interval,
    std::span<const OriginatorAggregate* const> interesting, std::size_t threads,
    FeatureExtractionStats* stats_out) {
  FeatureExtractionCache& cache = *cache_;
  FeatureExtractionStats stats;

  // --- 1. Dirty scan: which aggregates changed since this engine last
  // looked, and which of their queriers the interner hasn't met yet.
  std::vector<const OriginatorAggregate*> dirty;
  std::vector<net::IPv4Addr> pending;
  util::FlatSet<net::IPv4Addr> pending_seen;
  scanned_.reserve(interval.aggregates().size());
  for (const auto& [addr, agg] : interval.aggregates()) {
    auto [slot, inserted] = scanned_.try_emplace(addr, std::uint64_t{0});
    if (!inserted && slot->second == agg.mod_count) continue;
    slot->second = agg.mod_count;
    dirty.push_back(&agg);
    for (const auto& [querier, count] : agg.querier_queries) {
      if (cache.id_of(querier) == FeatureExtractionCache::kNoId &&
          pending_seen.insert(querier)) {
        pending.push_back(querier);
      }
    }
  }
  stats.dirty_originators = dirty.size();

  // --- 2. Resolve the unseen queriers in parallel (resolver and AS/geo
  // databases are read-only), then intern serially in first-seen order so
  // dense-id assignment is deterministic for every thread count.
  struct Resolved {
    std::optional<netdb::Asn> asn;
    std::optional<netdb::CountryCode> cc;
    QuerierCategory category = QuerierCategory::kOther;
  };
  const auto resolved = util::parallel_map(
      pending.size(),
      [&](std::size_t i) {
        const net::IPv4Addr querier = pending[i];
        Resolved r;
        r.asn = as_db_.lookup(querier);
        r.cc = geo_db_.lookup(querier);
        r.category = classify_querier(resolver_.resolve(querier));
        return r;
      },
      threads);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    cache.intern(pending[i], resolved[i].asn, resolved[i].cc, resolved[i].category);
  }
  stats.queriers_interned = pending.size();

  // --- 3. Fold the dirty aggregates into the interval normalizer sets.
  // Aggregates only ever gain queriers, so the seen sets grow
  // monotonically and rescanning a dirty aggregate is idempotent.
  as_seen_.resize(cache.as_count() + 1, 0);
  cc_seen_.resize(cache.cc_count() + 1, 0);
  for (const OriginatorAggregate* agg : dirty) {
    for (const auto& [querier, count] : agg->querier_queries) {
      const std::uint32_t qid = cache.id_of(querier);
      const std::uint32_t as = cache.as_id(qid);
      if (as != 0 && !as_seen_[as]) {
        as_seen_[as] = 1;
        ++as_norm_;
      }
      const std::uint32_t cc = cache.cc_id(qid);
      if (cc != 0 && !cc_seen_[cc]) {
        cc_seen_[cc] = 1;
        ++cc_norm_;
      }
    }
  }
  periods_norm_ = interval.total_periods();
  const std::uint64_t norm_periods = periods_norm_;
  const auto norm_as = static_cast<std::uint32_t>(as_norm_);
  const auto norm_cc = static_cast<std::uint32_t>(cc_norm_);

  // --- 4. Row phase.  Serial inserts freeze the row map's layout; the
  // per-row reuse decision and any recomputation then run over disjoint
  // entries in parallel contiguous chunks, one scratch buffer per chunk.
  auto& rows = cache.rows();
  rows.reserve(rows.size() + interesting.size());
  for (const OriginatorAggregate* agg : interesting) rows.try_emplace(agg->originator);

  const std::size_t n = interesting.size();
  std::vector<FeatureVector> out(n);
  const std::size_t slots = threads == 0 ? util::configured_thread_count() : threads;
  const std::size_t chunks = std::clamp<std::size_t>(slots, 1, n == 0 ? 1 : n);
  if (scratch_.size() < chunks) scratch_.resize(chunks);
  std::vector<FeatureExtractionStats> chunk_stats(chunks);
  util::parallel_for(
      chunks,
      [&](std::size_t c) {
        Scratch& scratch = scratch_[c];
        scratch.ensure(cache.s24_count(), cache.as_count(), cache.cc_count());
        FeatureExtractionStats& cs = chunk_stats[c];
        const std::size_t lo = c * n / chunks;
        const std::size_t hi = (c + 1) * n / chunks;
        for (std::size_t i = lo; i < hi; ++i) {
          const OriginatorAggregate& agg = *interesting[i];
          auto& entry = rows.find(agg.originator)->second;
          const bool norms_match = entry.interval_token != 0 &&
                                   entry.norm_periods == norm_periods &&
                                   entry.norm_as == norm_as && entry.norm_cc == norm_cc;
          bool row_valid;
          if (entry.interval_token == token_ && entry.mod_count == agg.mod_count) {
            // Our own stamp vouches for the columns: the aggregate is
            // untouched since we last flattened it.  The row itself
            // survives iff the interval normalizers also held still.
            row_valid = norms_match;
          } else {
            // Foreign or stale stamp (another engine shares the cache, or
            // the aggregate changed): trust nothing, compare the columns.
            bool same = entry.interval_token != 0 &&
                        entry.total_queries == agg.total_queries &&
                        entry.period_count == agg.periods.size() &&
                        entry.footprint == agg.unique_queriers() &&
                        entry.qids.size() == agg.querier_queries.size();
            if (same) {
              std::size_t m = 0;
              for (const auto& [querier, count] : agg.querier_queries) {
                if (entry.qids[m] != cache.id_of(querier) || entry.counts[m] != count) {
                  same = false;
                  break;
                }
                ++m;
              }
            }
            if (!same) {
              entry.qids.clear();
              entry.counts.clear();
              entry.qids.reserve(agg.querier_queries.size());
              entry.counts.reserve(agg.querier_queries.size());
              for (const auto& [querier, count] : agg.querier_queries) {
                entry.qids.push_back(cache.id_of(querier));
                entry.counts.push_back(count);
              }
              entry.total_queries = agg.total_queries;
              entry.period_count = agg.periods.size();
              entry.footprint = agg.unique_queriers();
            }
            row_valid = same && norms_match;
          }
          if (row_valid) {
            ++cs.rows_reused;
          } else {
            entry.row = compute_row(entry, agg.originator, scratch);
            ++cs.rows_recomputed;
          }
          entry.interval_token = token_;
          entry.mod_count = agg.mod_count;
          entry.norm_periods = norm_periods;
          entry.norm_as = norm_as;
          entry.norm_cc = norm_cc;
          out[i] = entry.row;
        }
      },
      threads);
  for (const FeatureExtractionStats& cs : chunk_stats) {
    stats.rows_reused += cs.rows_reused;
    stats.rows_recomputed += cs.rows_recomputed;
  }
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

}  // namespace dnsbs::core
