// Per-interval querier-identity memoization.
//
// Static features need each querier's reverse name resolved and
// keyword-classified (paper §III-C).  A querier — a recursive resolver —
// typically appears in MANY originators' footprints, so resolving per
// (originator, querier) membership repeats the same reverse lookup and
// keyword scan hundreds of times per interval.  QuerierClassificationCache
// resolves and classifies each unique querier exactly once per interval:
// build() collects the unique queriers across the selected aggregates,
// classifies them in parallel (the resolver is shared read-only state),
// and freezes the result into a flat map that the per-originator feature
// loops — running concurrently on the PR 1 worker pool — read without
// synchronization.
//
// Invalidation rule: the cache is scoped to one measurement interval (one
// Sensor::extract_features call).  Reverse names drift across intervals
// (dynamic pools, re-delegation), so a fresh interval builds a fresh cache;
// nothing is carried over.
#pragma once

#include <cstddef>
#include <span>

#include "core/static_features.hpp"
#include "net/ipv4.hpp"
#include "util/flat_hash.hpp"

namespace dnsbs::core {

struct OriginatorAggregate;

class QuerierClassificationCache {
 public:
  explicit QuerierClassificationCache(const QuerierResolver& base) : base_(base) {}

  /// Resolves + classifies every unique querier appearing across
  /// `aggregates`, each exactly once, fanning out over `threads` workers
  /// (0 = configured).  Call once per interval before the feature loops.
  void build(std::span<const OriginatorAggregate* const> aggregates,
             std::size_t threads = 0);

  /// The cached category; falls back to a direct resolve for queriers
  /// outside the built set (callers mixing aggregates).  Safe to call
  /// concurrently after build().
  QuerierCategory category(net::IPv4Addr querier) const;

  /// Unique queriers classified by build().
  std::size_t size() const noexcept { return categories_.size(); }

 private:
  const QuerierResolver& base_;
  util::FlatMap<net::IPv4Addr, QuerierCategory> categories_;
};

}  // namespace dnsbs::core
