#include "core/feature_vector.hpp"

namespace dnsbs::core {

std::vector<double> FeatureVector::row() const {
  std::vector<double> out;
  out.reserve(kFeatureCount);
  out.insert(out.end(), statics.begin(), statics.end());
  out.insert(out.end(), dynamics.begin(), dynamics.end());
  return out;
}

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(kFeatureCount);
    for (const auto n : static_feature_names()) names.emplace_back(n);
    for (const auto n : dynamic_feature_names()) names.emplace_back(n);
    return names;
  }();
  return kNames;
}

const std::vector<std::string>& app_class_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(kAppClassCount);
    for (const AppClass c : all_app_classes()) names.emplace_back(to_string(c));
    return names;
  }();
  return kNames;
}

ml::Dataset make_dataset() { return ml::Dataset(feature_names(), app_class_names()); }

namespace {

/// Shared tally: `categorize(querier)` must yield the querier's category.
template <typename Categorize>
StaticFeatures tally_static_features(const OriginatorAggregate& agg,
                                     Categorize&& categorize) {
  StaticFeatures f{};
  if (agg.querier_queries.empty()) return f;
  // Category tallies are small integers, so this sum is exact and the
  // result is independent of querier iteration order.
  for (const auto& [querier, count] : agg.querier_queries) {
    f[static_cast<std::size_t>(categorize(querier))] += 1.0;
  }
  const double total = static_cast<double>(agg.unique_queriers());
  for (double& v : f) v /= total;
  return f;
}

}  // namespace

StaticFeatures compute_static_features(const OriginatorAggregate& agg,
                                       const QuerierResolver& resolver) {
  return tally_static_features(agg, [&](net::IPv4Addr querier) {
    return classify_querier(resolver.resolve(querier));
  });
}

StaticFeatures compute_static_features(const OriginatorAggregate& agg,
                                       const QuerierClassificationCache& cache) {
  return tally_static_features(
      agg, [&](net::IPv4Addr querier) { return cache.category(querier); });
}

}  // namespace dnsbs::core
