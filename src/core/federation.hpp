// Multi-vantage federation: N sensors, one merged view.
//
// The paper's cross-vantage observation (final vs ccTLD vs root
// authorities, its JP/B/M datasets) becomes a real distributed
// computation here: each vantage (or each originator shard of one busy
// vantage) runs its own Sensor, exports a compact state snapshot, and a
// coordinator imports and merges them.  Merging reuses the same
// merge_from machinery the sharded ingest path trusts, so:
//
//   * originator-disjoint splits (the canonical federation_shard()
//     partition used by `dnsbs_cli export-state --shards N`) merge
//     byte-identically to one sensor having seen the whole stream —
//     per-originator state moves wholesale, preserving flat-container
//     layout and therefore every feature bit;
//   * overlapping splits (per-authority) combine losslessly in exact
//     mode and with bounded error in sketch mode (register max-merge,
//     see util/hll.hpp).
//
// The state file embeds the full sensor config; import refuses a
// mismatch rather than silently merging incompatible windows.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/sensor.hpp"

namespace dnsbs::core {

inline constexpr std::uint32_t kFederationMagic = 0x53424e44;  // "DNBS" little-endian
inline constexpr std::uint32_t kFederationVersion = 1;

/// Canonical shard assignment for an originator: every record of one
/// originator — hence one dedup (querier, originator) pair — lands in
/// exactly one shard, which is what makes the merged result byte-identical
/// to a single-sensor run.
inline std::size_t federation_shard(net::IPv4Addr originator, std::size_t shards) {
  return std::hash<net::IPv4Addr>{}(originator) % shards;
}

/// Writes a transferable snapshot of one sensor's window state: a header
/// (magic, version, full config echo) followed by Sensor::save_state.
void export_sensor_state(const Sensor& sensor, util::BinaryWriter& out);

/// Verifies the header against `into`'s config, then loads and merges the
/// state.  Returns false (leaving `into` untouched) on magic/version/
/// config mismatch or a corrupt stream.
bool import_sensor_state(util::BinaryReader& in, Sensor& into);

/// N per-shard sensors behind one ingest surface — the in-process
/// coordinator.  Records route by federation_shard(originator); bulk
/// batches ingest per-shard on the PR 1 thread pool.  After merge_into()
/// the pool is spent (shard state has been moved out).
class FederatedSensorPool {
 public:
  FederatedSensorPool(std::size_t shards, const SensorConfig& config,
                      const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                      const QuerierResolver& resolver);

  std::size_t shard_count() const noexcept { return sensors_.size(); }
  Sensor& shard(std::size_t i) noexcept { return *sensors_[i]; }
  const Sensor& shard(std::size_t i) const noexcept { return *sensors_[i]; }

  /// Streaming intake: routes one record to its originator's shard.
  void offer(const dns::QueryRecord& record) {
    sensors_[federation_shard(record.originator, sensors_.size())]->ingest(record);
  }

  /// Bulk intake: partitions by originator shard, then every shard sensor
  /// ingests its slice on the thread pool (shard sensors are configured
  /// single-threaded; the parallelism is across shards).
  void ingest_all(std::span<const dns::QueryRecord> records);

  /// Merges every shard's window state into `coordinator` in shard order,
  /// reserving the coordinator's tables from the summed source sizes up
  /// front.  Shards are left empty.
  void merge_into(Sensor& coordinator);

 private:
  std::size_t threads_;
  std::vector<std::unique_ptr<Sensor>> sensors_;
};

}  // namespace dnsbs::core
