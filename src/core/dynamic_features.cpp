#include "core/dynamic_features.hpp"

#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace dnsbs::core {

namespace {
// Geo memoization telemetry: entries/build are per-interval (cold);
// fallbacks count lookup_geo() misses outside the built interval — rare by
// construction, so the miss branch can afford a registry bump while the
// hit path stays registry-free.
util::MetricCounter& g_geo_builds = util::metrics_counter("dnsbs.cache.geo.builds");
util::MetricCounter& g_geo_entries = util::metrics_counter("dnsbs.cache.geo.entries");
util::MetricCounter& g_geo_fallbacks = util::metrics_counter("dnsbs.cache.geo.fallbacks");
util::MetricHistogram& g_geo_build_ns = util::metrics_histogram("dnsbs.cache.geo.build_ns");
}  // namespace

std::array<std::string_view, kDynamicFeatureCount> dynamic_feature_names() noexcept {
  return {"queries_per_querier", "persistence",       "local_entropy",
          "global_entropy",      "unique_as",         "unique_cc",
          "queriers_per_cc",     "queriers_per_as"};
}

DynamicFeatureExtractor::DynamicFeatureExtractor(const netdb::AsDb& as_db,
                                                 const netdb::GeoDb& geo_db,
                                                 const OriginatorAggregator& interval)
    : as_db_(as_db), geo_db_(geo_db), interval_periods_(interval.total_periods()) {
  const std::uint64_t t0 = util::metrics_now_ns();
  // One pass over the interval learns the AS/country normalizers and, as a
  // side effect, memoizes every unique querier's AS and country: queriers
  // shared by many originator footprints cost one trie lookup instead of
  // one per membership when extract() runs.
  util::FlatSet<netdb::Asn> ases;
  util::FlatSet<netdb::CountryCode> countries;
  // Reserve once from the summed footprints: queriers shared between
  // originators make this an over-estimate, which costs idle slots but
  // never a mid-build rehash (the old per-originator increments
  // under-reserved and rehashed repeatedly on large intervals).
  std::size_t total_footprint = 0;
  for (const auto& [originator, agg] : interval.aggregates()) {
    total_footprint += agg.querier_queries.size();
  }
  geo_cache_.reserve(total_footprint);
  for (const auto& [originator, agg] : interval.aggregates()) {
    for (const auto& [querier, count] : agg.querier_queries) {
      const auto [slot, inserted] = geo_cache_.try_emplace(querier);
      if (inserted) {
        QuerierGeo& geo = slot->second;
        if (const auto asn = as_db_.lookup(querier)) {
          geo.asn = *asn;
          geo.has_asn = true;
        }
        if (const auto cc = geo_db_.lookup(querier)) {
          geo.cc = *cc;
          geo.has_cc = true;
        }
      }
      const QuerierGeo& geo = slot->second;
      if (geo.has_asn) ases.insert(geo.asn);
      if (geo.has_cc) countries.insert(geo.cc);
    }
  }
  interval_as_count_ = ases.size();
  interval_country_count_ = countries.size();
  g_geo_builds.inc();
  g_geo_entries.add(geo_cache_.size());
  g_geo_build_ns.record(util::metrics_now_ns() - t0);
}

DynamicFeatureExtractor::QuerierGeo DynamicFeatureExtractor::lookup_geo(
    net::IPv4Addr querier) const {
  if (const auto* cached = geo_cache_.find(querier)) return cached->second;
  // Not part of the interval the extractor was built over (callers mixing
  // aggregators); fall back to the databases.
  g_geo_fallbacks.inc();
  QuerierGeo geo;
  if (const auto asn = as_db_.lookup(querier)) {
    geo.asn = *asn;
    geo.has_asn = true;
  }
  if (const auto cc = geo_db_.lookup(querier)) {
    geo.cc = *cc;
    geo.has_cc = true;
  }
  return geo;
}

DynamicFeatures DynamicFeatureExtractor::extract(const OriginatorAggregate& agg) const {
  DynamicFeatures f{};
  const double queriers = static_cast<double>(agg.unique_queriers());
  if (queriers == 0.0) return f;

  f[static_cast<std::size_t>(DynamicFeature::kQueriesPerQuerier)] =
      static_cast<double>(agg.total_queries) / queriers;

  f[static_cast<std::size_t>(DynamicFeature::kPersistence)] =
      interval_periods_ == 0
          ? 0.0
          : static_cast<double>(agg.periods.size()) / static_cast<double>(interval_periods_);

  util::FlatMap<std::uint32_t, std::size_t> slash24s;
  util::FlatMap<std::uint32_t, std::size_t> slash8s;
  util::FlatSet<netdb::Asn> ases;
  util::FlatSet<netdb::CountryCode> countries;
  for (const auto& [querier, count] : agg.querier_queries) {
    ++slash24s[querier.slash24()];
    ++slash8s[querier.slash8()];
    const QuerierGeo geo = lookup_geo(querier);
    if (geo.has_asn) ases.insert(geo.asn);
    if (geo.has_cc) countries.insert(geo.cc);
  }
  // Entropy streams straight out of the bucket maps — no intermediate
  // count-vector copy (the iterator form is bit-identical to the span one).
  const auto count_of = [](const auto& kv) noexcept { return kv.second; };
  f[static_cast<std::size_t>(DynamicFeature::kLocalEntropy)] =
      util::normalized_entropy(slash24s.begin(), slash24s.end(), count_of);
  f[static_cast<std::size_t>(DynamicFeature::kGlobalEntropy)] =
      util::normalized_entropy(slash8s.begin(), slash8s.end(), count_of);

  f[static_cast<std::size_t>(DynamicFeature::kUniqueAs)] =
      interval_as_count_ == 0
          ? 0.0
          : static_cast<double>(ases.size()) / static_cast<double>(interval_as_count_);
  f[static_cast<std::size_t>(DynamicFeature::kUniqueCountries)] =
      interval_country_count_ == 0 ? 0.0
                                   : static_cast<double>(countries.size()) /
                                         static_cast<double>(interval_country_count_);

  f[static_cast<std::size_t>(DynamicFeature::kQueriersPerCountry)] =
      static_cast<double>(countries.size()) / queriers;
  f[static_cast<std::size_t>(DynamicFeature::kQueriersPerAs)] =
      static_cast<double>(ases.size()) / queriers;
  return f;
}

}  // namespace dnsbs::core
