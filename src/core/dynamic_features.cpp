#include "core/dynamic_features.hpp"

#include <unordered_set>

#include "util/stats.hpp"

namespace dnsbs::core {

std::array<std::string_view, kDynamicFeatureCount> dynamic_feature_names() noexcept {
  return {"queries_per_querier", "persistence",       "local_entropy",
          "global_entropy",      "unique_as",         "unique_cc",
          "queriers_per_cc",     "queriers_per_as"};
}

DynamicFeatureExtractor::DynamicFeatureExtractor(const netdb::AsDb& as_db,
                                                 const netdb::GeoDb& geo_db,
                                                 const OriginatorAggregator& interval)
    : as_db_(as_db), geo_db_(geo_db), interval_periods_(interval.total_periods()) {
  std::unordered_set<netdb::Asn> ases;
  std::unordered_set<netdb::CountryCode> countries;
  for (const auto& [originator, agg] : interval.aggregates()) {
    for (const auto& [querier, count] : agg.querier_queries) {
      if (const auto asn = as_db_.lookup(querier)) ases.insert(*asn);
      if (const auto cc = geo_db_.lookup(querier)) countries.insert(*cc);
    }
  }
  interval_as_count_ = ases.size();
  interval_country_count_ = countries.size();
}

DynamicFeatures DynamicFeatureExtractor::extract(const OriginatorAggregate& agg) const {
  DynamicFeatures f{};
  const double queriers = static_cast<double>(agg.unique_queriers());
  if (queriers == 0.0) return f;

  f[static_cast<std::size_t>(DynamicFeature::kQueriesPerQuerier)] =
      static_cast<double>(agg.total_queries) / queriers;

  f[static_cast<std::size_t>(DynamicFeature::kPersistence)] =
      interval_periods_ == 0
          ? 0.0
          : static_cast<double>(agg.periods.size()) / static_cast<double>(interval_periods_);

  util::Counter<std::uint32_t> slash24s;
  util::Counter<std::uint32_t> slash8s;
  std::unordered_set<netdb::Asn> ases;
  std::unordered_set<netdb::CountryCode> countries;
  for (const auto& [querier, count] : agg.querier_queries) {
    slash24s.add(querier.slash24());
    slash8s.add(querier.slash8());
    if (const auto asn = as_db_.lookup(querier)) ases.insert(*asn);
    if (const auto cc = geo_db_.lookup(querier)) countries.insert(*cc);
  }
  const auto local_counts = slash24s.values();
  const auto global_counts = slash8s.values();
  f[static_cast<std::size_t>(DynamicFeature::kLocalEntropy)] =
      util::normalized_entropy(local_counts);
  f[static_cast<std::size_t>(DynamicFeature::kGlobalEntropy)] =
      util::normalized_entropy(global_counts);

  f[static_cast<std::size_t>(DynamicFeature::kUniqueAs)] =
      interval_as_count_ == 0
          ? 0.0
          : static_cast<double>(ases.size()) / static_cast<double>(interval_as_count_);
  f[static_cast<std::size_t>(DynamicFeature::kUniqueCountries)] =
      interval_country_count_ == 0 ? 0.0
                                   : static_cast<double>(countries.size()) /
                                         static_cast<double>(interval_country_count_);

  f[static_cast<std::size_t>(DynamicFeature::kQueriersPerCountry)] =
      static_cast<double>(countries.size()) / queriers;
  f[static_cast<std::size_t>(DynamicFeature::kQueriersPerAs)] =
      static_cast<double>(ases.size()) / queriers;
  return f;
}

}  // namespace dnsbs::core
