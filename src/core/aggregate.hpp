// Per-originator aggregation over a measurement interval.
//
// Paper §III-B: feature vectors are computed per originator over an
// interval of d days; the interesting originators are those with >= 20
// unique queriers, ranked by unique-querier count ("footprint").  The
// aggregator folds a deduplicated query stream into per-originator querier
// histograms plus the temporal footprint needed by the dynamic features.
//
// Two querier-state modes (SensorConfig::querier_state):
//
//   exact   every (querier -> count) pair is stored.  Byte-identical to
//           every prior release; the per-originator flat containers carry
//           the full histogram.
//   sketch  originators stay exact until their footprint crosses
//           `promote_threshold`, then promote: the exact histogram is
//           frozen as a first-K sample (sampled queriers keep counting)
//           and unique-querier / unique-/24 cardinalities move into
//           mergeable HyperLogLog registers (util::HllSketch).  Memory per
//           originator is bounded regardless of footprint, and N sensors'
//           states merge at a coordinator with bounded error — the
//           federation path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "dns/query_log.hpp"
#include "net/ipv4.hpp"
#include "util/flat_hash.hpp"
#include "util/hll.hpp"
#include "util/time.hpp"

namespace dnsbs::core {

enum class QuerierStateMode : std::uint8_t { kExact = 0, kSketch = 1 };

/// Cardinality-state knobs, threaded from SensorConfig through every
/// aggregator (including the sharded-ingest shards and the federation
/// coordinator — all parties must agree for merges to be well-defined).
struct QuerierSketchConfig {
  QuerierStateMode mode = QuerierStateMode::kExact;
  /// Exact histogram size at which an originator promotes to sketches.
  std::uint32_t promote_threshold = 64;
  /// HllSketch precision (registers = 2^precision; default ~1.6% error).
  std::uint8_t precision = util::HllSketch::kDefaultPrecision;

  bool operator==(const QuerierSketchConfig&) const = default;
};

/// Register state of one promoted originator: unique queriers and unique
/// /24s, both covering *every* querier ever admitted (promotion folds the
/// frozen sample in first).
struct QuerierSketches {
  util::HllSketch queriers;
  util::HllSketch slash24s;

  explicit QuerierSketches(std::uint8_t precision)
      : queriers(precision), slash24s(precision) {}

  std::size_t memory_bytes() const noexcept {
    return sizeof(QuerierSketches) + queriers.memory_bytes() + slash24s.memory_bytes();
  }
};

/// Everything the feature extractors need to know about one originator.
///
/// The containers are flat-hash (util::FlatMap/FlatSet): all records of
/// one originator are ingested by one shard in stream order, so the slot
/// layout — and with it the iteration order every feature reduction sees —
/// is identical between serial and sharded ingest (merge moves the
/// per-originator state wholesale).  The per-originator maps use a 4-slot
/// allocation floor: at millions of mostly-light originators the floor,
/// not the entries, dominates resident memory.
struct OriginatorAggregate {
  net::IPv4Addr originator;
  /// Query count per unique querier (after dedup).  In sketch mode, a
  /// promoted originator's map is the frozen first-K *sample*: sampled
  /// queriers keep counting, later first-sight queriers exist only in the
  /// sketch registers.
  util::FlatMap<net::IPv4Addr, std::uint32_t, std::hash<net::IPv4Addr>, 4> querier_queries;
  /// Distinct 10-minute periods in which the originator appeared, sorted
  /// ascending.  A sorted vector, not a hash set: the per-originator
  /// period list is small and mostly append-only (time moves forward), and
  /// the canonical order makes serialization layout-free.
  std::vector<std::int64_t> periods;
  /// Sketch-mode register state; null until promoted (and always null in
  /// exact mode).
  std::unique_ptr<QuerierSketches> sketch;
  util::SimTime first_seen{};
  util::SimTime last_seen{};
  std::uint64_t total_queries = 0;
  /// Modification stamp: number of admitted records folded into this
  /// aggregate (merge sums both sides).  All records of one originator are
  /// ingested by one shard, so the stamp is a pure function of the input
  /// stream — identical across DNSBS_THREADS.  The incremental feature
  /// path uses it as a cheap per-originator dirty check: within one
  /// extraction interval, an unchanged stamp means an unchanged aggregate.
  std::uint64_t mod_count = 0;

  bool promoted() const noexcept { return sketch != nullptr; }

  /// Footprint: exact histogram size until promotion, sketch estimate
  /// after (never reported below the retained sample size).
  std::size_t unique_queriers() const noexcept {
    if (!sketch) return querier_queries.size();
    return std::max<std::size_t>(sketch->queriers.estimate_u64(), querier_queries.size());
  }

  /// Inserts into the sorted period vector (no-op when present).
  void add_period(std::int64_t period) {
    const auto it = std::lower_bound(periods.begin(), periods.end(), period);
    if (it == periods.end() || *it != period) periods.insert(it, period);
  }
};

class OriginatorAggregator {
 public:
  /// `period` is the persistence bucket width (paper: 10 minutes).
  explicit OriginatorAggregator(util::SimTime period = util::SimTime::minutes(10),
                                QuerierSketchConfig sketch = {})
      : period_(period),
        sketch_(sketch),
        interval_queriers_(kIntervalEstimatorThreshold, sketch.precision) {}

  void add(const dns::QueryRecord& record);

  /// Pre-sizes the aggregates map for an expected originator count so a
  /// bulk ingest does not rehash repeatedly.
  void reserve(std::size_t expected_originators) {
    aggregates_.reserve(expected_originators);
  }

  /// Folds another aggregator (same period width and sketch config) into
  /// this one, reserving from the source table sizes up front so N-way
  /// merges never rehash mid-merge.  Used by the sharded ingest path:
  /// shards are disjoint by originator, so per-originator state moves over
  /// unchanged; interval-wide period sets union.  The merged result is
  /// identical to having ingested every record serially.  The federation
  /// path merges *overlapping* aggregators: exact-mode histograms combine
  /// losslessly, sketch-mode registers max-merge (bounded error).
  void merge_from(OriginatorAggregator&& other);

  std::size_t originator_count() const noexcept { return aggregates_.size(); }

  /// Distinct 10-minute periods observed across the whole interval
  /// (denominator for the persistence feature).
  std::size_t total_periods() const noexcept { return all_periods_.size(); }

  /// Total admitted records folded into this aggregator (merge_from sums
  /// shard counts, so the value matches serial ingest for any thread
  /// count).  An unchanged count between two extract_features() calls
  /// means the whole interval is unchanged — the sensor's fast path.
  std::uint64_t mutation_count() const noexcept { return mutation_count_; }

  const util::FlatMap<net::IPv4Addr, OriginatorAggregate>& aggregates() const noexcept {
    return aggregates_;
  }

  const QuerierSketchConfig& sketch_config() const noexcept { return sketch_; }

  /// Promoted originators and their total register bytes (both 0 in exact
  /// mode); feeds the dnsbs.aggregate.sketch_* gauges at publish points.
  std::size_t promoted_count() const noexcept;
  std::size_t sketch_bytes() const noexcept;

  /// Interval-wide unique queriers across *all* originators (sketch mode
  /// only; exact mode returns 0 rather than pay per-record upkeep).
  /// Mergeable across federated sensors — per-shard distinct counts can't
  /// simply sum because queriers overlap between shards.
  std::uint64_t interval_unique_queriers() const {
    return sketch_.mode == QuerierStateMode::kSketch ? interval_queriers_.count() : 0;
  }

  /// Originators with at least `min_queriers` unique queriers, sorted by
  /// unique-querier count descending (ties: by address for determinism),
  /// truncated to `top_n` (0 = no truncation).  This is the paper's
  /// "interesting and analyzable" selection.
  std::vector<const OriginatorAggregate*> select_interesting(std::size_t min_queriers,
                                                             std::size_t top_n) const;

  /// Checkpoint round-trip.  Every flat container — the aggregates map and
  /// each aggregate's querier histogram — serializes slot-exactly, because
  /// feature reductions iterate them and their order must survive a
  /// restart for the daemon's byte-identical-restart contract; sketch
  /// registers serialize representation-exactly (hll.hpp).  load()
  /// requires an aggregator constructed with the same period width and
  /// sketch config and returns false on a mismatch or corrupt stream.
  void save(util::BinaryWriter& out) const;
  bool load(util::BinaryReader& in);

 private:
  /// The interval-wide estimator stays exact well past any single window's
  /// typical distinct-querier count, then bounds itself.
  static constexpr std::uint32_t kIntervalEstimatorThreshold = 1024;

  void add_querier_sketched(OriginatorAggregate& agg, net::IPv4Addr querier);

  util::SimTime period_;
  QuerierSketchConfig sketch_;
  util::FlatMap<net::IPv4Addr, OriginatorAggregate> aggregates_;
  util::FlatSet<std::int64_t> all_periods_;
  util::CardinalityEstimator interval_queriers_;
  std::uint64_t mutation_count_ = 0;
};

}  // namespace dnsbs::core
