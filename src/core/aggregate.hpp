// Per-originator aggregation over a measurement interval.
//
// Paper §III-B: feature vectors are computed per originator over an
// interval of d days; the interesting originators are those with >= 20
// unique queriers, ranked by unique-querier count ("footprint").  The
// aggregator folds a deduplicated query stream into per-originator querier
// histograms plus the temporal footprint needed by the dynamic features.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/query_log.hpp"
#include "net/ipv4.hpp"
#include "util/flat_hash.hpp"
#include "util/time.hpp"

namespace dnsbs::util {
class BinaryReader;
class BinaryWriter;
}  // namespace dnsbs::util

namespace dnsbs::core {

/// Everything the feature extractors need to know about one originator.
///
/// The containers are flat-hash (util::FlatMap/FlatSet): all records of
/// one originator are ingested by one shard in stream order, so the slot
/// layout — and with it the iteration order every feature reduction sees —
/// is identical between serial and sharded ingest (merge moves the
/// per-originator state wholesale).
struct OriginatorAggregate {
  net::IPv4Addr originator;
  /// Query count per unique querier (after dedup).
  util::FlatMap<net::IPv4Addr, std::uint32_t> querier_queries;
  /// Distinct 10-minute periods in which the originator appeared.
  util::FlatSet<std::int64_t> periods;
  util::SimTime first_seen{};
  util::SimTime last_seen{};
  std::uint64_t total_queries = 0;
  /// Modification stamp: number of admitted records folded into this
  /// aggregate (merge sums both sides).  All records of one originator are
  /// ingested by one shard, so the stamp is a pure function of the input
  /// stream — identical across DNSBS_THREADS.  The incremental feature
  /// path uses it as a cheap per-originator dirty check: within one
  /// extraction interval, an unchanged stamp means an unchanged aggregate.
  std::uint64_t mod_count = 0;

  std::size_t unique_queriers() const noexcept { return querier_queries.size(); }
};

class OriginatorAggregator {
 public:
  /// `period` is the persistence bucket width (paper: 10 minutes).
  explicit OriginatorAggregator(util::SimTime period = util::SimTime::minutes(10))
      : period_(period) {}

  void add(const dns::QueryRecord& record);

  /// Pre-sizes the aggregates map for an expected originator count so a
  /// bulk ingest does not rehash repeatedly.
  void reserve(std::size_t expected_originators) {
    aggregates_.reserve(expected_originators);
  }

  /// Folds another aggregator (same period width) into this one.  Used by
  /// the sharded ingest path: shards are disjoint by originator, so
  /// per-originator state moves over unchanged; interval-wide period sets
  /// union.  The merged result is identical to having ingested every
  /// record serially.
  void merge_from(OriginatorAggregator&& other);

  std::size_t originator_count() const noexcept { return aggregates_.size(); }

  /// Distinct 10-minute periods observed across the whole interval
  /// (denominator for the persistence feature).
  std::size_t total_periods() const noexcept { return all_periods_.size(); }

  /// Total admitted records folded into this aggregator (merge_from sums
  /// shard counts, so the value matches serial ingest for any thread
  /// count).  An unchanged count between two extract_features() calls
  /// means the whole interval is unchanged — the sensor's fast path.
  std::uint64_t mutation_count() const noexcept { return mutation_count_; }

  const util::FlatMap<net::IPv4Addr, OriginatorAggregate>& aggregates() const noexcept {
    return aggregates_;
  }

  /// Originators with at least `min_queriers` unique queriers, sorted by
  /// unique-querier count descending (ties: by address for determinism),
  /// truncated to `top_n` (0 = no truncation).  This is the paper's
  /// "interesting and analyzable" selection.
  std::vector<const OriginatorAggregate*> select_interesting(std::size_t min_queriers,
                                                             std::size_t top_n) const;

  /// Checkpoint round-trip.  Every flat container — the aggregates map,
  /// each aggregate's querier histogram and period set, and the interval
  /// period set — serializes slot-exactly, because feature reductions
  /// iterate them and their order must survive a restart for the daemon's
  /// byte-identical-restart contract.  load() requires an aggregator
  /// constructed with the same period width and returns false on a
  /// mismatch or corrupt stream.
  void save(util::BinaryWriter& out) const;
  bool load(util::BinaryReader& in);

 private:
  util::SimTime period_;
  util::FlatMap<net::IPv4Addr, OriginatorAggregate> aggregates_;
  util::FlatSet<std::int64_t> all_periods_;
  std::uint64_t mutation_count_ = 0;
};

}  // namespace dnsbs::core
