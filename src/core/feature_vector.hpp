// The combined per-originator feature vector fed to the classifiers:
// 14 static (querier-name category fractions) + 8 dynamic features, tagged
// with the originator address and its footprint (unique-querier count).
#pragma once

#include <string>
#include <vector>

#include "core/dynamic_features.hpp"
#include "core/querier_cache.hpp"
#include "core/static_features.hpp"
#include "ml/dataset.hpp"
#include "net/ipv4.hpp"

namespace dnsbs::core {

inline constexpr std::size_t kFeatureCount = kQuerierCategoryCount + kDynamicFeatureCount;

struct FeatureVector {
  net::IPv4Addr originator;
  std::size_t footprint = 0;  ///< unique queriers in the interval
  StaticFeatures statics{};
  DynamicFeatures dynamics{};

  /// Flattened row in the canonical column order (statics then dynamics).
  std::vector<double> row() const;
};

/// Canonical feature column names (statics then dynamics); the schema for
/// every ml::Dataset in the system.
const std::vector<std::string>& feature_names();

/// Application-class name table matching core::AppClass order, for
/// building datasets.
const std::vector<std::string>& app_class_names();

/// An empty dataset with the canonical schema.
ml::Dataset make_dataset();

/// Computes static features from an aggregate via a resolver.
StaticFeatures compute_static_features(const OriginatorAggregate& agg,
                                       const QuerierResolver& resolver);

/// Computes static features via the per-interval classification cache so a
/// querier shared by many footprints is resolved only once (the hot path —
/// Sensor::extract_features uses this overload).
StaticFeatures compute_static_features(const OriginatorAggregate& agg,
                                       const QuerierClassificationCache& cache);

}  // namespace dnsbs::core
