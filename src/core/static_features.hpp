// Static features: classifying querier reverse-DNS names.
//
// Paper §III-C defines keyword categories over querier domain names (home,
// mail, ns, fw, antispam, www, ntp) plus provider suffixes (cdn, aws, ms,
// google) and two resolution-failure categories (unreach, nxdomain).
// Matching is by name component, "favoring matches by the left-most
// component, and taking first rule when there are multiple matches" — so
// both mail.ns.example.com and mail-ns.example.com classify as mail.
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "core/taxonomy.hpp"
#include "dns/name.hpp"
#include "net/ipv4.hpp"

namespace dnsbs::core {

/// How a querier's reverse name resolved.
enum class ResolveStatus : std::uint8_t {
  kOk,         ///< PTR returned a name
  kNxDomain,   ///< no reverse name exists
  kUnreachable ///< the reverse authority could not be reached
};

/// A querier's resolved identity, as seen by the sensor's own reverse
/// lookups of querier addresses.
struct QuerierInfo {
  ResolveStatus status = ResolveStatus::kNxDomain;
  dns::DnsName name;  ///< valid when status == kOk
};

/// Interface the sensor uses to discover querier names; implemented by the
/// simulator's naming model and, in a live deployment, by an actual
/// resolver client.
class QuerierResolver {
 public:
  virtual ~QuerierResolver() = default;
  virtual QuerierInfo resolve(net::IPv4Addr querier) const = 0;
};

/// Classifies one resolved name into a keyword category (kOther when no
/// keyword matches).  Exposed separately from the fraction computation for
/// testing and reuse.
QuerierCategory classify_querier_name(const dns::DnsName& name);

/// Classifies a QuerierInfo, folding in the failure categories.
QuerierCategory classify_querier(const QuerierInfo& info);

/// Fraction of an originator's queriers falling in each category; sums to
/// 1 over non-empty inputs.  (Fractions, not counts, so static features
/// are independent of query rate — paper §III-C.)
using StaticFeatures = std::array<double, kQuerierCategoryCount>;

/// Names for the static feature columns, in QuerierCategory order.
std::array<std::string_view, kQuerierCategoryCount> static_feature_names() noexcept;

}  // namespace dnsbs::core
