#include "core/taxonomy.hpp"

namespace dnsbs::core {

const std::array<AppClass, kAppClassCount>& all_app_classes() noexcept {
  static constexpr std::array<AppClass, kAppClassCount> kAll = {
      AppClass::kAdTracker, AppClass::kCdn,  AppClass::kCloud, AppClass::kCrawler,
      AppClass::kDns,       AppClass::kMail, AppClass::kNtp,   AppClass::kP2p,
      AppClass::kPush,      AppClass::kScan, AppClass::kSpam,  AppClass::kUpdate,
  };
  return kAll;
}

std::string_view to_string(AppClass c) noexcept {
  switch (c) {
    case AppClass::kAdTracker: return "ad-tracker";
    case AppClass::kCdn: return "cdn";
    case AppClass::kCloud: return "cloud";
    case AppClass::kCrawler: return "crawler";
    case AppClass::kDns: return "dns";
    case AppClass::kMail: return "mail";
    case AppClass::kNtp: return "ntp";
    case AppClass::kP2p: return "p2p";
    case AppClass::kPush: return "push";
    case AppClass::kScan: return "scan";
    case AppClass::kSpam: return "spam";
    case AppClass::kUpdate: return "update";
  }
  return "?";
}

std::optional<AppClass> app_class_from_string(std::string_view s) noexcept {
  for (const AppClass c : all_app_classes()) {
    if (to_string(c) == s) return c;
  }
  return std::nullopt;
}

std::string_view to_string(QuerierCategory c) noexcept {
  switch (c) {
    case QuerierCategory::kHome: return "home";
    case QuerierCategory::kMail: return "mail";
    case QuerierCategory::kNs: return "ns";
    case QuerierCategory::kFw: return "fw";
    case QuerierCategory::kAntispam: return "antispam";
    case QuerierCategory::kWww: return "www";
    case QuerierCategory::kNtp: return "ntp";
    case QuerierCategory::kCdn: return "cdn";
    case QuerierCategory::kAws: return "aws";
    case QuerierCategory::kMs: return "ms";
    case QuerierCategory::kGoogle: return "google";
    case QuerierCategory::kOther: return "other";
    case QuerierCategory::kUnreach: return "unreach";
    case QuerierCategory::kNxDomain: return "nxdomain";
  }
  return "?";
}

}  // namespace dnsbs::core
