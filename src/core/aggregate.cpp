#include "core/aggregate.hpp"

#include <algorithm>
#include <iterator>

#include "util/binio.hpp"
#include "util/metrics.hpp"

namespace dnsbs::core {

namespace {
// originators_created counts first sightings only (cold branch of add();
// the per-record path stays registry-free) and is deterministic: the set
// of distinct originators doesn't depend on sharding.  merges counts
// merge_from calls, which only happen on the sharded path — sched.
// sketch_promotions / sketch_merges are deterministic: an originator
// promotes when its distinct-querier count crosses the threshold (a pure
// function of the admitted stream; all records of one originator live in
// one shard), and register merges only happen on the federation path,
// where the merge sequence is explicit.
util::MetricCounter& g_created = util::metrics_counter("dnsbs.aggregate.originators_created");
util::MetricCounter& g_merges = util::metrics_counter("dnsbs.aggregate.merges", /*sched=*/true);
util::MetricCounter& g_promotions = util::metrics_counter("dnsbs.aggregate.sketch_promotions");
util::MetricCounter& g_sketch_merges = util::metrics_counter("dnsbs.aggregate.sketch_merges");

/// Freezes the exact histogram as the retained sample and folds every
/// sampled querier into fresh registers, so the register file covers the
/// full key set no matter when promotion happened.
void promote(OriginatorAggregate& agg, std::uint8_t precision) {
  agg.sketch = std::make_unique<QuerierSketches>(precision);
  for (const auto& [querier, count] : agg.querier_queries) {
    agg.sketch->queriers.add(querier.value());
    agg.sketch->slash24s.add(querier.slash24());
  }
  g_promotions.inc();
}

void merge_sorted_periods(std::vector<std::int64_t>& mine,
                          const std::vector<std::int64_t>& theirs) {
  if (theirs.empty()) return;
  std::vector<std::int64_t> merged;
  merged.reserve(mine.size() + theirs.size());
  std::set_union(mine.begin(), mine.end(), theirs.begin(), theirs.end(),
                 std::back_inserter(merged));
  mine = std::move(merged);
}

}  // namespace

void OriginatorAggregator::add(const dns::QueryRecord& record) {
  auto [it, inserted] = aggregates_.try_emplace(record.originator);
  OriginatorAggregate& agg = it->second;
  if (inserted) {
    g_created.inc();
    agg.originator = record.originator;
    agg.first_seen = record.time;
    agg.last_seen = record.time;
  } else {
    agg.first_seen = std::min(agg.first_seen, record.time);
    agg.last_seen = std::max(agg.last_seen, record.time);
  }
  if (sketch_.mode == QuerierStateMode::kExact) {
    ++agg.querier_queries[record.querier];
  } else {
    add_querier_sketched(agg, record.querier);
    interval_queriers_.add(record.querier.value());
  }
  ++agg.total_queries;
  ++agg.mod_count;
  ++mutation_count_;
  const std::int64_t period = record.time.secs() / period_.secs();
  agg.add_period(period);
  all_periods_.insert(period);
}

void OriginatorAggregator::add_querier_sketched(OriginatorAggregate& agg,
                                                net::IPv4Addr querier) {
  if (auto* slot = agg.querier_queries.find(querier)) {
    // Sampled (or pre-promotion) querier: its registers are already set.
    ++slot->second;
    return;
  }
  if (!agg.sketch) {
    if (agg.querier_queries.size() < sketch_.promote_threshold) {
      agg.querier_queries.try_emplace(querier, 1u);
      return;
    }
    promote(agg, sketch_.precision);
  }
  agg.sketch->queriers.add(querier.value());
  agg.sketch->slash24s.add(querier.slash24());
}

void OriginatorAggregator::merge_from(OriginatorAggregator&& other) {
  g_merges.inc();
  // Reserve interval-wide tables from the source sizes up front (the
  // aggregates map reserves inside FlatMap::merge_from) so an N-way
  // federated merge does one growth per table, not a rehash cascade.
  all_periods_.reserve(all_periods_.size() + other.all_periods_.size());
  // Sharded ingest keys shards by originator, so the common case moves
  // each per-originator aggregate over wholesale — preserving its flat
  // container layout, hence the iteration order feature reductions see.
  aggregates_.merge_from(
      std::move(other.aggregates_),
      [this](OriginatorAggregate& mine, OriginatorAggregate&& theirs) {
        // Originator present on both sides (only possible when merging
        // overlapping aggregators, e.g. a per-authority federation split):
        // combine the histograms / registers.
        mine.first_seen = std::min(mine.first_seen, theirs.first_seen);
        mine.last_seen = std::max(mine.last_seen, theirs.last_seen);
        mine.total_queries += theirs.total_queries;
        mine.mod_count += theirs.mod_count;
        merge_sorted_periods(mine.periods, theirs.periods);
        if (sketch_.mode == QuerierStateMode::kExact) {
          mine.querier_queries.reserve(mine.querier_queries.size() +
                                       theirs.querier_queries.size());
          for (const auto& [querier, count] : theirs.querier_queries) {
            mine.querier_queries[querier] += count;
          }
          return;
        }
        if (!mine.sketch && !theirs.sketch) {
          // Both below threshold: a lossless histogram union; promote if
          // the union crosses the line, exactly as a single stream would.
          for (const auto& [querier, count] : theirs.querier_queries) {
            mine.querier_queries[querier] += count;
          }
          if (mine.querier_queries.size() > sketch_.promote_threshold) {
            promote(mine, sketch_.precision);
          }
          return;
        }
        if (!mine.sketch) promote(mine, sketch_.precision);
        if (theirs.sketch) {
          mine.sketch->queriers.merge_from(theirs.sketch->queriers);
          mine.sketch->slash24s.merge_from(theirs.sketch->slash24s);
          g_sketch_merges.inc();
          // Their sample only contributes counts for queriers we also
          // sampled; the rest already live in their registers.
          for (const auto& [querier, count] : theirs.querier_queries) {
            if (auto* slot = mine.querier_queries.find(querier)) slot->second += count;
          }
        } else {
          // Their side is still exact: fold its full key set into the
          // registers so the estimate keeps covering the union.
          for (const auto& [querier, count] : theirs.querier_queries) {
            mine.sketch->queriers.add(querier.value());
            mine.sketch->slash24s.add(querier.slash24());
            if (auto* slot = mine.querier_queries.find(querier)) slot->second += count;
          }
        }
      });
  all_periods_.insert(other.all_periods_.begin(), other.all_periods_.end());
  other.all_periods_.clear();
  if (sketch_.mode == QuerierStateMode::kSketch) {
    interval_queriers_.merge_from(other.interval_queriers_);
  }
  mutation_count_ += other.mutation_count_;
  other.mutation_count_ = 0;
}

std::size_t OriginatorAggregator::promoted_count() const noexcept {
  if (sketch_.mode != QuerierStateMode::kSketch) return 0;
  std::size_t n = 0;
  for (const auto& [addr, agg] : aggregates_) {
    if (agg.sketch) ++n;
  }
  return n;
}

std::size_t OriginatorAggregator::sketch_bytes() const noexcept {
  if (sketch_.mode != QuerierStateMode::kSketch) return 0;
  std::size_t bytes = 0;
  for (const auto& [addr, agg] : aggregates_) {
    if (agg.sketch) bytes += agg.sketch->memory_bytes();
  }
  return bytes;
}

namespace {

void save_period_set(util::BinaryWriter& out, const util::FlatSet<std::int64_t>& set) {
  out.u64(set.capacity());
  out.u64(set.size());
  set.for_each_slot([&out](std::size_t slot, std::int64_t period) {
    out.u64(slot);
    out.i64(period);
  });
}

bool load_period_set(util::BinaryReader& in, util::FlatSet<std::int64_t>& set) {
  const std::uint64_t cap = in.u64();
  const std::uint64_t n = in.u64();
  if (!in.ok() || n > cap || !set.restore_layout(cap)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t slot = in.u64();
    const std::int64_t period = in.i64();
    if (!in.ok() || !set.place(slot, period)) return false;
  }
  return true;
}

void save_period_vector(util::BinaryWriter& out, const std::vector<std::int64_t>& periods) {
  out.u64(periods.size());
  for (const std::int64_t p : periods) out.i64(p);
}

bool load_period_vector(util::BinaryReader& in, std::vector<std::int64_t>& periods) {
  const std::uint64_t n = in.u64();
  if (!in.ok() || n > (std::uint64_t{1} << 32)) return false;
  periods.clear();
  periods.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t p = in.i64();
    // Canonical form is strictly ascending; reject anything else.
    if (!in.ok() || (!periods.empty() && p <= periods.back())) return false;
    periods.push_back(p);
  }
  return true;
}

}  // namespace

void OriginatorAggregator::save(util::BinaryWriter& out) const {
  out.i64(period_.secs());
  out.u8(static_cast<std::uint8_t>(sketch_.mode));
  out.u32(sketch_.promote_threshold);
  out.u8(sketch_.precision);
  out.u64(aggregates_.capacity());
  out.u64(aggregates_.size());
  const bool sketch_mode = sketch_.mode == QuerierStateMode::kSketch;
  aggregates_.for_each_slot(
      [&out, sketch_mode](std::size_t slot, net::IPv4Addr addr,
                          const OriginatorAggregate& agg) {
        out.u64(slot);
        out.u32(addr.value());
        out.u32(agg.originator.value());
        out.i64(agg.first_seen.secs());
        out.i64(agg.last_seen.secs());
        out.u64(agg.total_queries);
        out.u64(agg.mod_count);
        out.u64(agg.querier_queries.capacity());
        out.u64(agg.querier_queries.size());
        agg.querier_queries.for_each_slot(
            [&out](std::size_t qslot, net::IPv4Addr querier, std::uint32_t count) {
              out.u64(qslot);
              out.u32(querier.value());
              out.u32(count);
            });
        save_period_vector(out, agg.periods);
        if (sketch_mode) {
          out.u8(agg.sketch ? 1 : 0);
          if (agg.sketch) {
            agg.sketch->queriers.save(out);
            agg.sketch->slash24s.save(out);
          }
        }
      });
  save_period_set(out, all_periods_);
  out.u64(mutation_count_);
  if (sketch_mode) interval_queriers_.save(out);
}

bool OriginatorAggregator::load(util::BinaryReader& in) {
  if (in.i64() != period_.secs()) return false;
  const std::uint8_t mode = in.u8();
  const std::uint32_t threshold = in.u32();
  const std::uint8_t precision = in.u8();
  if (!in.ok() || mode != static_cast<std::uint8_t>(sketch_.mode) ||
      threshold != sketch_.promote_threshold || precision != sketch_.precision) {
    return false;
  }
  const bool sketch_mode = sketch_.mode == QuerierStateMode::kSketch;
  const std::uint64_t cap = in.u64();
  const std::uint64_t n = in.u64();
  if (!in.ok() || n > cap || !aggregates_.restore_layout(cap)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t slot = in.u64();
    const net::IPv4Addr addr{in.u32()};
    OriginatorAggregate agg;
    agg.originator = net::IPv4Addr{in.u32()};
    agg.first_seen = util::SimTime::seconds(in.i64());
    agg.last_seen = util::SimTime::seconds(in.i64());
    agg.total_queries = in.u64();
    agg.mod_count = in.u64();
    const std::uint64_t qcap = in.u64();
    const std::uint64_t qn = in.u64();
    if (!in.ok() || qn > qcap || !agg.querier_queries.restore_layout(qcap)) return false;
    for (std::uint64_t q = 0; q < qn; ++q) {
      const std::uint64_t qslot = in.u64();
      const net::IPv4Addr querier{in.u32()};
      const std::uint32_t count = in.u32();
      if (!in.ok() || !agg.querier_queries.place(qslot, querier, count)) return false;
    }
    if (!load_period_vector(in, agg.periods)) return false;
    if (sketch_mode) {
      const std::uint8_t has_sketch = in.u8();
      if (!in.ok() || has_sketch > 1) return false;
      if (has_sketch) {
        agg.sketch = std::make_unique<QuerierSketches>(sketch_.precision);
        if (!agg.sketch->queriers.load(in) || !agg.sketch->slash24s.load(in) ||
            agg.sketch->queriers.precision() != sketch_.precision ||
            agg.sketch->slash24s.precision() != sketch_.precision) {
          return false;
        }
      }
    }
    if (!aggregates_.place(slot, addr, std::move(agg))) return false;
  }
  if (!load_period_set(in, all_periods_)) return false;
  mutation_count_ = in.u64();
  if (sketch_mode && !interval_queriers_.load(in)) return false;
  return in.ok();
}

std::vector<const OriginatorAggregate*> OriginatorAggregator::select_interesting(
    std::size_t min_queriers, std::size_t top_n) const {
  std::vector<const OriginatorAggregate*> selected;
  selected.reserve(aggregates_.size());
  for (const auto& [addr, agg] : aggregates_) {
    if (agg.unique_queriers() >= min_queriers) selected.push_back(&agg);
  }
  std::sort(selected.begin(), selected.end(),
            [](const OriginatorAggregate* a, const OriginatorAggregate* b) {
              if (a->unique_queriers() != b->unique_queriers()) {
                return a->unique_queriers() > b->unique_queriers();
              }
              return a->originator < b->originator;
            });
  if (top_n != 0 && selected.size() > top_n) selected.resize(top_n);
  return selected;
}

}  // namespace dnsbs::core
