#include "core/aggregate.hpp"

#include <algorithm>

namespace dnsbs::core {

void OriginatorAggregator::add(const dns::QueryRecord& record) {
  auto [it, inserted] = aggregates_.try_emplace(record.originator);
  OriginatorAggregate& agg = it->second;
  if (inserted) {
    agg.originator = record.originator;
    agg.first_seen = record.time;
    agg.last_seen = record.time;
  } else {
    agg.first_seen = std::min(agg.first_seen, record.time);
    agg.last_seen = std::max(agg.last_seen, record.time);
  }
  ++agg.querier_queries[record.querier];
  ++agg.total_queries;
  const std::int64_t period = record.time.secs() / period_.secs();
  agg.periods.insert(period);
  all_periods_.insert(period);
}

std::vector<const OriginatorAggregate*> OriginatorAggregator::select_interesting(
    std::size_t min_queriers, std::size_t top_n) const {
  std::vector<const OriginatorAggregate*> selected;
  selected.reserve(aggregates_.size());
  for (const auto& [addr, agg] : aggregates_) {
    if (agg.unique_queriers() >= min_queriers) selected.push_back(&agg);
  }
  std::sort(selected.begin(), selected.end(),
            [](const OriginatorAggregate* a, const OriginatorAggregate* b) {
              if (a->unique_queriers() != b->unique_queriers()) {
                return a->unique_queriers() > b->unique_queriers();
              }
              return a->originator < b->originator;
            });
  if (top_n != 0 && selected.size() > top_n) selected.resize(top_n);
  return selected;
}

}  // namespace dnsbs::core
