#include "core/aggregate.hpp"

#include <algorithm>

namespace dnsbs::core {

void OriginatorAggregator::add(const dns::QueryRecord& record) {
  auto [it, inserted] = aggregates_.try_emplace(record.originator);
  OriginatorAggregate& agg = it->second;
  if (inserted) {
    agg.originator = record.originator;
    agg.first_seen = record.time;
    agg.last_seen = record.time;
  } else {
    agg.first_seen = std::min(agg.first_seen, record.time);
    agg.last_seen = std::max(agg.last_seen, record.time);
  }
  ++agg.querier_queries[record.querier];
  ++agg.total_queries;
  const std::int64_t period = record.time.secs() / period_.secs();
  agg.periods.insert(period);
  all_periods_.insert(period);
}

void OriginatorAggregator::merge_from(OriginatorAggregator&& other) {
  aggregates_.reserve(aggregates_.size() + other.aggregates_.size());
  for (auto& [addr, agg] : other.aggregates_) {
    auto [it, inserted] = aggregates_.try_emplace(addr);
    if (inserted) {
      it->second = std::move(agg);
    } else {
      // Originator present on both sides (only possible when merging
      // non-sharded aggregators): combine the histograms.
      OriginatorAggregate& mine = it->second;
      mine.first_seen = std::min(mine.first_seen, agg.first_seen);
      mine.last_seen = std::max(mine.last_seen, agg.last_seen);
      mine.total_queries += agg.total_queries;
      for (const auto& [querier, count] : agg.querier_queries) {
        mine.querier_queries[querier] += count;
      }
      mine.periods.insert(agg.periods.begin(), agg.periods.end());
    }
  }
  all_periods_.insert(other.all_periods_.begin(), other.all_periods_.end());
  other.aggregates_.clear();
  other.all_periods_.clear();
}

std::vector<const OriginatorAggregate*> OriginatorAggregator::select_interesting(
    std::size_t min_queriers, std::size_t top_n) const {
  std::vector<const OriginatorAggregate*> selected;
  selected.reserve(aggregates_.size());
  for (const auto& [addr, agg] : aggregates_) {
    if (agg.unique_queriers() >= min_queriers) selected.push_back(&agg);
  }
  std::sort(selected.begin(), selected.end(),
            [](const OriginatorAggregate* a, const OriginatorAggregate* b) {
              if (a->unique_queriers() != b->unique_queriers()) {
                return a->unique_queriers() > b->unique_queriers();
              }
              return a->originator < b->originator;
            });
  if (top_n != 0 && selected.size() > top_n) selected.resize(top_n);
  return selected;
}

}  // namespace dnsbs::core
