#include "core/aggregate.hpp"

#include <algorithm>

#include "util/metrics.hpp"

namespace dnsbs::core {

namespace {
// originators_created counts first sightings only (cold branch of add();
// the per-record path stays registry-free) and is deterministic: the set
// of distinct originators doesn't depend on sharding.  merges counts
// merge_from calls, which only happen on the sharded path — sched.
util::MetricCounter& g_created = util::metrics_counter("dnsbs.aggregate.originators_created");
util::MetricCounter& g_merges = util::metrics_counter("dnsbs.aggregate.merges", /*sched=*/true);
}  // namespace

void OriginatorAggregator::add(const dns::QueryRecord& record) {
  auto [it, inserted] = aggregates_.try_emplace(record.originator);
  OriginatorAggregate& agg = it->second;
  if (inserted) {
    g_created.inc();
    agg.originator = record.originator;
    agg.first_seen = record.time;
    agg.last_seen = record.time;
  } else {
    agg.first_seen = std::min(agg.first_seen, record.time);
    agg.last_seen = std::max(agg.last_seen, record.time);
  }
  ++agg.querier_queries[record.querier];
  ++agg.total_queries;
  ++agg.mod_count;
  ++mutation_count_;
  const std::int64_t period = record.time.secs() / period_.secs();
  agg.periods.insert(period);
  all_periods_.insert(period);
}

void OriginatorAggregator::merge_from(OriginatorAggregator&& other) {
  g_merges.inc();
  // Sharded ingest keys shards by originator, so the common case moves
  // each per-originator aggregate over wholesale — preserving its flat
  // container layout, hence the iteration order feature reductions see.
  aggregates_.merge_from(
      std::move(other.aggregates_),
      [](OriginatorAggregate& mine, OriginatorAggregate&& theirs) {
        // Originator present on both sides (only possible when merging
        // non-sharded aggregators): combine the histograms.
        mine.first_seen = std::min(mine.first_seen, theirs.first_seen);
        mine.last_seen = std::max(mine.last_seen, theirs.last_seen);
        mine.total_queries += theirs.total_queries;
        mine.mod_count += theirs.mod_count;
        for (const auto& [querier, count] : theirs.querier_queries) {
          mine.querier_queries[querier] += count;
        }
        mine.periods.insert(theirs.periods.begin(), theirs.periods.end());
      });
  all_periods_.insert(other.all_periods_.begin(), other.all_periods_.end());
  other.all_periods_.clear();
  mutation_count_ += other.mutation_count_;
  other.mutation_count_ = 0;
}

std::vector<const OriginatorAggregate*> OriginatorAggregator::select_interesting(
    std::size_t min_queriers, std::size_t top_n) const {
  std::vector<const OriginatorAggregate*> selected;
  selected.reserve(aggregates_.size());
  for (const auto& [addr, agg] : aggregates_) {
    if (agg.unique_queriers() >= min_queriers) selected.push_back(&agg);
  }
  std::sort(selected.begin(), selected.end(),
            [](const OriginatorAggregate* a, const OriginatorAggregate* b) {
              if (a->unique_queriers() != b->unique_queriers()) {
                return a->unique_queriers() > b->unique_queriers();
              }
              return a->originator < b->originator;
            });
  if (top_n != 0 && selected.size() > top_n) selected.resize(top_n);
  return selected;
}

}  // namespace dnsbs::core
