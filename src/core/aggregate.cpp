#include "core/aggregate.hpp"

#include <algorithm>

#include "util/binio.hpp"
#include "util/metrics.hpp"

namespace dnsbs::core {

namespace {
// originators_created counts first sightings only (cold branch of add();
// the per-record path stays registry-free) and is deterministic: the set
// of distinct originators doesn't depend on sharding.  merges counts
// merge_from calls, which only happen on the sharded path — sched.
util::MetricCounter& g_created = util::metrics_counter("dnsbs.aggregate.originators_created");
util::MetricCounter& g_merges = util::metrics_counter("dnsbs.aggregate.merges", /*sched=*/true);
}  // namespace

void OriginatorAggregator::add(const dns::QueryRecord& record) {
  auto [it, inserted] = aggregates_.try_emplace(record.originator);
  OriginatorAggregate& agg = it->second;
  if (inserted) {
    g_created.inc();
    agg.originator = record.originator;
    agg.first_seen = record.time;
    agg.last_seen = record.time;
  } else {
    agg.first_seen = std::min(agg.first_seen, record.time);
    agg.last_seen = std::max(agg.last_seen, record.time);
  }
  ++agg.querier_queries[record.querier];
  ++agg.total_queries;
  ++agg.mod_count;
  ++mutation_count_;
  const std::int64_t period = record.time.secs() / period_.secs();
  agg.periods.insert(period);
  all_periods_.insert(period);
}

void OriginatorAggregator::merge_from(OriginatorAggregator&& other) {
  g_merges.inc();
  // Sharded ingest keys shards by originator, so the common case moves
  // each per-originator aggregate over wholesale — preserving its flat
  // container layout, hence the iteration order feature reductions see.
  aggregates_.merge_from(
      std::move(other.aggregates_),
      [](OriginatorAggregate& mine, OriginatorAggregate&& theirs) {
        // Originator present on both sides (only possible when merging
        // non-sharded aggregators): combine the histograms.
        mine.first_seen = std::min(mine.first_seen, theirs.first_seen);
        mine.last_seen = std::max(mine.last_seen, theirs.last_seen);
        mine.total_queries += theirs.total_queries;
        mine.mod_count += theirs.mod_count;
        for (const auto& [querier, count] : theirs.querier_queries) {
          mine.querier_queries[querier] += count;
        }
        mine.periods.insert(theirs.periods.begin(), theirs.periods.end());
      });
  all_periods_.insert(other.all_periods_.begin(), other.all_periods_.end());
  other.all_periods_.clear();
  mutation_count_ += other.mutation_count_;
  other.mutation_count_ = 0;
}

namespace {

void save_period_set(util::BinaryWriter& out, const util::FlatSet<std::int64_t>& set) {
  out.u64(set.capacity());
  out.u64(set.size());
  set.for_each_slot([&out](std::size_t slot, std::int64_t period) {
    out.u64(slot);
    out.i64(period);
  });
}

bool load_period_set(util::BinaryReader& in, util::FlatSet<std::int64_t>& set) {
  const std::uint64_t cap = in.u64();
  const std::uint64_t n = in.u64();
  if (!in.ok() || n > cap || !set.restore_layout(cap)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t slot = in.u64();
    const std::int64_t period = in.i64();
    if (!in.ok() || !set.place(slot, period)) return false;
  }
  return true;
}

}  // namespace

void OriginatorAggregator::save(util::BinaryWriter& out) const {
  out.i64(period_.secs());
  out.u64(aggregates_.capacity());
  out.u64(aggregates_.size());
  aggregates_.for_each_slot(
      [&out](std::size_t slot, net::IPv4Addr addr, const OriginatorAggregate& agg) {
        out.u64(slot);
        out.u32(addr.value());
        out.u32(agg.originator.value());
        out.i64(agg.first_seen.secs());
        out.i64(agg.last_seen.secs());
        out.u64(agg.total_queries);
        out.u64(agg.mod_count);
        out.u64(agg.querier_queries.capacity());
        out.u64(agg.querier_queries.size());
        agg.querier_queries.for_each_slot(
            [&out](std::size_t qslot, net::IPv4Addr querier, std::uint32_t count) {
              out.u64(qslot);
              out.u32(querier.value());
              out.u32(count);
            });
        save_period_set(out, agg.periods);
      });
  save_period_set(out, all_periods_);
  out.u64(mutation_count_);
}

bool OriginatorAggregator::load(util::BinaryReader& in) {
  if (in.i64() != period_.secs()) return false;
  const std::uint64_t cap = in.u64();
  const std::uint64_t n = in.u64();
  if (!in.ok() || n > cap || !aggregates_.restore_layout(cap)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t slot = in.u64();
    const net::IPv4Addr addr{in.u32()};
    OriginatorAggregate agg;
    agg.originator = net::IPv4Addr{in.u32()};
    agg.first_seen = util::SimTime::seconds(in.i64());
    agg.last_seen = util::SimTime::seconds(in.i64());
    agg.total_queries = in.u64();
    agg.mod_count = in.u64();
    const std::uint64_t qcap = in.u64();
    const std::uint64_t qn = in.u64();
    if (!in.ok() || qn > qcap || !agg.querier_queries.restore_layout(qcap)) return false;
    for (std::uint64_t q = 0; q < qn; ++q) {
      const std::uint64_t qslot = in.u64();
      const net::IPv4Addr querier{in.u32()};
      const std::uint32_t count = in.u32();
      if (!in.ok() || !agg.querier_queries.place(qslot, querier, count)) return false;
    }
    if (!load_period_set(in, agg.periods)) return false;
    if (!aggregates_.place(slot, addr, std::move(agg))) return false;
  }
  if (!load_period_set(in, all_periods_)) return false;
  mutation_count_ = in.u64();
  return in.ok();
}

std::vector<const OriginatorAggregate*> OriginatorAggregator::select_interesting(
    std::size_t min_queriers, std::size_t top_n) const {
  std::vector<const OriginatorAggregate*> selected;
  selected.reserve(aggregates_.size());
  for (const auto& [addr, agg] : aggregates_) {
    if (agg.unique_queriers() >= min_queriers) selected.push_back(&agg);
  }
  std::sort(selected.begin(), selected.end(),
            [](const OriginatorAggregate* a, const OriginatorAggregate* b) {
              if (a->unique_queriers() != b->unique_queriers()) {
                return a->unique_queriers() > b->unique_queriers();
              }
              return a->originator < b->originator;
            });
  if (top_n != 0 && selected.size() > top_n) selected.resize(top_n);
  return selected;
}

}  // namespace dnsbs::core
