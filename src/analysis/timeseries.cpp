#include "analysis/timeseries.hpp"

#include <algorithm>
#include <unordered_map>

namespace dnsbs::analysis {

std::array<std::size_t, core::kAppClassCount> window_class_counts(const WindowResult& w) {
  std::array<std::size_t, core::kAppClassCount> counts{};
  for (const auto& [addr, cls] : w.classes) ++counts[static_cast<std::size_t>(cls)];
  return counts;
}

util::BoxStats class_footprint_box(const WindowResult& w, core::AppClass cls) {
  std::vector<double> sizes;
  for (const auto& [addr, c] : w.classes) {
    if (c != cls) continue;
    const auto it = w.footprints.find(addr);
    if (it != w.footprints.end()) sizes.push_back(static_cast<double>(it->second));
  }
  return util::box_stats(std::move(sizes));
}

std::vector<std::size_t> footprint_trajectory(std::span<const WindowResult> windows,
                                              net::IPv4Addr originator) {
  std::vector<std::size_t> out;
  out.reserve(windows.size());
  for (const auto& w : windows) {
    const auto it = w.footprints.find(originator);
    out.push_back(it == w.footprints.end() ? 0 : it->second);
  }
  return out;
}

std::vector<net::IPv4Addr> persistent_originators(std::span<const WindowResult> windows,
                                                  core::AppClass cls,
                                                  std::size_t min_windows) {
  struct Stats {
    std::size_t appearances = 0;
    std::size_t peak = 0;
  };
  std::unordered_map<net::IPv4Addr, Stats> stats;
  for (const auto& w : windows) {
    for (const auto& [addr, c] : w.classes) {
      if (c != cls) continue;
      auto& s = stats[addr];
      ++s.appearances;
      const auto it = w.footprints.find(addr);
      if (it != w.footprints.end()) s.peak = std::max(s.peak, it->second);
    }
  }
  std::vector<std::pair<net::IPv4Addr, Stats>> ranked(stats.begin(), stats.end());
  std::erase_if(ranked, [min_windows](const auto& p) {
    return p.second.appearances < min_windows;
  });
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.appearances != b.second.appearances) {
      return a.second.appearances > b.second.appearances;
    }
    if (a.second.peak != b.second.peak) return a.second.peak > b.second.peak;
    return a.first < b.first;
  });
  std::vector<net::IPv4Addr> out;
  out.reserve(ranked.size());
  for (const auto& [addr, s] : ranked) out.push_back(addr);
  return out;
}

}  // namespace dnsbs::analysis
