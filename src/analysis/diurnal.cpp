#include "analysis/diurnal.hpp"

#include <algorithm>
#include <unordered_set>

namespace dnsbs::analysis {

std::vector<std::size_t> per_minute_queriers(std::span<const dns::QueryRecord> records,
                                             net::IPv4Addr originator, util::SimTime t0,
                                             util::SimTime t1) {
  const std::int64_t first_minute = t0.minute_index();
  const std::int64_t last_minute = t1.minute_index();
  if (last_minute <= first_minute) return {};
  std::vector<std::unordered_set<std::uint32_t>> buckets(
      static_cast<std::size_t>(last_minute - first_minute));
  for (const auto& r : records) {
    if (r.originator != originator || r.time < t0 || r.time >= t1) continue;
    buckets[static_cast<std::size_t>(r.time.minute_index() - first_minute)].insert(
        r.querier.value());
  }
  std::vector<std::size_t> out;
  out.reserve(buckets.size());
  for (const auto& b : buckets) out.push_back(b.size());
  return out;
}

std::vector<double> hourly_profile(std::span<const std::size_t> per_minute) {
  std::vector<double> sums(24, 0.0);
  std::vector<std::size_t> counts(24, 0);
  for (std::size_t minute = 0; minute < per_minute.size(); ++minute) {
    const std::size_t hour = (minute / 60) % 24;
    sums[hour] += static_cast<double>(per_minute[minute]);
    ++counts[hour];
  }
  for (std::size_t h = 0; h < 24; ++h) {
    if (counts[h] > 0) sums[h] /= static_cast<double>(counts[h]);
  }
  return sums;
}

double diurnality(std::span<const double> hourly) {
  if (hourly.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(hourly.begin(), hourly.end());
  const double sum = *lo + *hi;
  return sum <= 0.0 ? 0.0 : (*hi - *lo) / sum;
}

}  // namespace dnsbs::analysis
