// Diurnal activity profiles (paper Appendix C / Figure 16): counts of
// queriers per minute for one originator, revealing whether an activity
// tracks human time-of-day (CDN, mail) or runs flat (ssh scanning, spam).
#pragma once

#include <span>
#include <vector>

#include "dns/query_log.hpp"

namespace dnsbs::analysis {

/// Unique queriers per minute for `originator` over [t0, t1).
std::vector<std::size_t> per_minute_queriers(std::span<const dns::QueryRecord> records,
                                             net::IPv4Addr originator, util::SimTime t0,
                                             util::SimTime t1);

/// Aggregates a minute series into per-hour-of-day means, for a compact
/// diurnality summary.
std::vector<double> hourly_profile(std::span<const std::size_t> per_minute);

/// Diurnality score in [0, 1]: (max - min) / (max + min) of the hourly
/// profile; near 0 for flat activity, near 1 for strongly diurnal.
double diurnality(std::span<const double> hourly);

}  // namespace dnsbs::analysis
