// Per-window telemetry history: a bounded ring of derived health gauges,
// one entry per closed window, maintained by StreamingWindowDriver and
// served by the daemon's HISTORY verb and GET /windows endpoint.
//
// Every field except the `sched`-grouped ones is derived from the
// window's deterministic metrics_delta and WindowResult, so the rendered
// history (minus the "sched" object) is byte-identical across
// DNSBS_THREADS and across checkpoint/restore — the same contract the
// window summary files carry.  The full entries (including sched fields
// like the intake queue watermark) ride in the checkpoint, so a restored
// daemon answers HISTORY exactly as the killed one would have.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "analysis/window_result.hpp"

namespace dnsbs::analysis {

struct WindowTelemetry {
  std::uint64_t index = 0;
  std::int64_t start_secs = 0;
  std::int64_t end_secs = 0;

  // Raw deterministic inputs (window metrics_delta / WindowResult).
  std::int64_t records = 0;           ///< dnsbs.sensor.records delta
  std::int64_t interesting = 0;       ///< dnsbs.sensor.interesting delta
  std::int64_t dedup_admitted = 0;    ///< dnsbs.dedup.admitted delta
  std::int64_t dedup_suppressed = 0;  ///< dnsbs.dedup.suppressed delta
  std::int64_t late_records = 0;      ///< dnsbs.serve.late_dropped delta
  std::uint64_t classified = 0;
  bool retrained = false;
  std::array<std::uint64_t, kConfidenceBuckets> confidence_hist{};
  /// Predictions per application class (index = core::AppClass value).
  std::array<std::uint64_t, core::kAppClassCount> class_counts{};

  // Derived health gauges (filled by TelemetryHistory::record).
  double dedup_ratio = 0.0;  ///< suppressed / (admitted + suppressed)
  double late_rate = 0.0;    ///< late / (late + records)
  /// Total-variation distance of this window's class mix from the mean
  /// mix of the trailing baseline (previous windows with predictions).
  double drift = 0.0;
  bool drift_warned = false;

  // Scheduling-shaped operational fields, grouped under "sched" in the
  // JSON so determinism diffs can strip them in one pass.
  std::int64_t queue_depth_peak = 0;  ///< intake queue watermark this window

  bool operator==(const WindowTelemetry&) const = default;
};

/// Bounded ring of WindowTelemetry with drift detection against a
/// trailing baseline.  Not thread-safe: the driver mutates it from the
/// single drive thread.
class TelemetryHistory {
 public:
  /// `capacity` 0 disables retention (record still derives gauges).
  /// Drift compares against the mean class mix of up to
  /// `baseline_windows` preceding entries and flags entries whose drift
  /// exceeds `drift_warn_threshold` once the baseline has at least
  /// `min_baseline` contributing windows.
  explicit TelemetryHistory(std::size_t capacity = 256,
                            double drift_warn_threshold = 0.5,
                            std::size_t baseline_windows = 8,
                            std::size_t min_baseline = 3);

  /// Fills the derived gauges of `entry` (ratios + drift vs the current
  /// baseline), appends it and trims to capacity.  Returns the stored
  /// entry (valid until the next record()).
  const WindowTelemetry& record(WindowTelemetry entry);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  const std::deque<WindowTelemetry>& entries() const noexcept { return entries_; }

  /// One-line JSON {"count":N,"capacity":C,"windows":[...]} of the most
  /// recent `last_n` entries (0 = all).  Deterministic: doubles are
  /// derived from deterministic integers, class-mix keys come from the
  /// fixed taxonomy.  sched-shaped fields sit under each entry's "sched"
  /// object.
  std::string to_json(std::size_t last_n = 0) const;

  /// Byte-stable binary round trip for checkpoints (doubles travel as
  /// bit patterns).  load() replaces the contents; entries beyond the
  /// configured capacity are refused (corrupt/mismatched checkpoint).
  void save(util::BinaryWriter& out) const;
  bool load(util::BinaryReader& in);

 private:
  std::size_t capacity_;
  double drift_warn_threshold_;
  std::size_t baseline_windows_;
  std::size_t min_baseline_;
  std::deque<WindowTelemetry> entries_;
  WindowTelemetry scratch_;  ///< returned storage when capacity_ == 0
};

}  // namespace dnsbs::analysis
