#include "analysis/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/feature_vector.hpp"
#include "util/binio.hpp"

namespace dnsbs::analysis {

namespace {

void append_double(std::string& out, double v) {
  // %.9g round-trips the derived ratios closely enough while staying
  // readable; byte-stability follows from the inputs being identical
  // integers, so the formatted text is identical too.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

/// Class mix as fractions; all-zero when the window predicted nothing.
std::array<double, core::kAppClassCount> mix_of(const WindowTelemetry& e) {
  std::array<double, core::kAppClassCount> mix{};
  if (e.classified == 0) return mix;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    mix[i] = static_cast<double>(e.class_counts[i]) / static_cast<double>(e.classified);
  }
  return mix;
}

}  // namespace

TelemetryHistory::TelemetryHistory(std::size_t capacity, double drift_warn_threshold,
                                   std::size_t baseline_windows, std::size_t min_baseline)
    : capacity_(capacity),
      drift_warn_threshold_(drift_warn_threshold),
      baseline_windows_(baseline_windows),
      min_baseline_(min_baseline) {}

const WindowTelemetry& TelemetryHistory::record(WindowTelemetry entry) {
  const std::int64_t dedup_total = entry.dedup_admitted + entry.dedup_suppressed;
  entry.dedup_ratio = dedup_total > 0 ? static_cast<double>(entry.dedup_suppressed) /
                                            static_cast<double>(dedup_total)
                                      : 0.0;
  const std::int64_t offered = entry.late_records + entry.records;
  entry.late_rate =
      offered > 0 ? static_cast<double>(entry.late_records) / static_cast<double>(offered)
                  : 0.0;

  // Drift: total-variation distance between this window's class mix and
  // the mean mix of the trailing baseline (most recent windows that made
  // predictions).  Warn only once the baseline is populated enough to
  // mean something.
  std::array<double, core::kAppClassCount> baseline{};
  std::size_t contributing = 0;
  for (auto it = entries_.rbegin();
       it != entries_.rend() && contributing < baseline_windows_; ++it) {
    if (it->classified == 0) continue;
    const auto mix = mix_of(*it);
    for (std::size_t i = 0; i < baseline.size(); ++i) baseline[i] += mix[i];
    ++contributing;
  }
  if (contributing > 0 && entry.classified > 0) {
    const auto mix = mix_of(entry);
    double l1 = 0.0;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      l1 += std::abs(mix[i] - baseline[i] / static_cast<double>(contributing));
    }
    entry.drift = l1 / 2.0;  // total variation: half the L1 distance
    entry.drift_warned =
        contributing >= min_baseline_ && entry.drift > drift_warn_threshold_;
  }

  if (capacity_ == 0) {
    scratch_ = std::move(entry);
    return scratch_;
  }
  while (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(std::move(entry));
  return entries_.back();
}

std::string TelemetryHistory::to_json(std::size_t last_n) const {
  const std::size_t n =
      last_n == 0 ? entries_.size() : std::min(last_n, entries_.size());
  std::string out = "{\"count\":" + std::to_string(n) +
                    ",\"capacity\":" + std::to_string(capacity_) + ",\"windows\":[";
  const auto& names = core::app_class_names();
  bool first_entry = true;
  for (std::size_t k = entries_.size() - n; k < entries_.size(); ++k) {
    const WindowTelemetry& e = entries_[k];
    if (!first_entry) out += ",";
    first_entry = false;
    out += "{\"index\":" + std::to_string(e.index);
    out += ",\"start\":" + std::to_string(e.start_secs);
    out += ",\"end\":" + std::to_string(e.end_secs);
    out += ",\"records\":" + std::to_string(e.records);
    out += ",\"interesting\":" + std::to_string(e.interesting);
    out += ",\"dedup\":{\"admitted\":" + std::to_string(e.dedup_admitted);
    out += ",\"suppressed\":" + std::to_string(e.dedup_suppressed);
    out += ",\"ratio\":";
    append_double(out, e.dedup_ratio);
    out += "},\"late\":{\"records\":" + std::to_string(e.late_records);
    out += ",\"rate\":";
    append_double(out, e.late_rate);
    out += "},\"classified\":" + std::to_string(e.classified);
    out += ",\"retrained\":";
    out += e.retrained ? "true" : "false";
    out += ",\"confidence\":[";
    for (std::size_t i = 0; i < e.confidence_hist.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(e.confidence_hist[i]);
    }
    out += "],\"class_mix\":{";
    bool first_class = true;
    for (std::size_t i = 0; i < e.class_counts.size(); ++i) {
      if (e.class_counts[i] == 0) continue;
      if (!first_class) out += ",";
      first_class = false;
      out += "\"";
      out += i < names.size() ? names[i] : std::to_string(i);
      out += "\":";
      append_double(out, e.classified > 0 ? static_cast<double>(e.class_counts[i]) /
                                                static_cast<double>(e.classified)
                                          : 0.0);
    }
    out += "},\"drift\":";
    append_double(out, e.drift);
    out += ",\"drift_warn\":";
    out += e.drift_warned ? "true" : "false";
    out += ",\"sched\":{\"queue_depth_peak\":" + std::to_string(e.queue_depth_peak) + "}";
    out += "}";
  }
  out += "]}";
  return out;
}

void TelemetryHistory::save(util::BinaryWriter& out) const {
  out.u64(capacity_);
  out.u64(entries_.size());
  for (const WindowTelemetry& e : entries_) {
    out.u64(e.index);
    out.i64(e.start_secs);
    out.i64(e.end_secs);
    out.i64(e.records);
    out.i64(e.interesting);
    out.i64(e.dedup_admitted);
    out.i64(e.dedup_suppressed);
    out.i64(e.late_records);
    out.u64(e.classified);
    out.u8(e.retrained ? 1 : 0);
    for (const std::uint64_t b : e.confidence_hist) out.u64(b);
    for (const std::uint64_t c : e.class_counts) out.u64(c);
    out.f64(e.dedup_ratio);
    out.f64(e.late_rate);
    out.f64(e.drift);
    out.u8(e.drift_warned ? 1 : 0);
    out.i64(e.queue_depth_peak);
  }
}

bool TelemetryHistory::load(util::BinaryReader& in) {
  const std::uint64_t capacity = in.u64();
  const std::uint64_t n = in.u64();
  if (!in.ok() || capacity != capacity_) return false;
  if (capacity_ != 0 && n > capacity_) return false;
  std::deque<WindowTelemetry> loaded;
  for (std::uint64_t k = 0; k < n; ++k) {
    WindowTelemetry e;
    e.index = in.u64();
    e.start_secs = in.i64();
    e.end_secs = in.i64();
    e.records = in.i64();
    e.interesting = in.i64();
    e.dedup_admitted = in.i64();
    e.dedup_suppressed = in.i64();
    e.late_records = in.i64();
    e.classified = in.u64();
    e.retrained = in.u8() != 0;
    for (std::uint64_t& b : e.confidence_hist) b = in.u64();
    for (std::uint64_t& c : e.class_counts) c = in.u64();
    e.dedup_ratio = in.f64();
    e.late_rate = in.f64();
    e.drift = in.f64();
    e.drift_warned = in.u8() != 0;
    e.queue_depth_peak = in.i64();
    if (!in.ok()) return false;
    loaded.push_back(std::move(e));
  }
  entries_ = std::move(loaded);
  return true;
}

}  // namespace dnsbs::analysis
