// Per-window time series over classified windows: originator counts per
// class (Figure 11), footprint distributions for a class (Figure 12), and
// per-originator footprint trajectories (Figure 13).
#pragma once

#include <span>
#include <vector>

#include "analysis/window_result.hpp"
#include "util/stats.hpp"

namespace dnsbs::analysis {

/// Originator counts per class for one window (one x-position of Fig 11).
std::array<std::size_t, core::kAppClassCount> window_class_counts(const WindowResult& w);

/// Box statistics of footprints of one class in one window (Fig 12).
util::BoxStats class_footprint_box(const WindowResult& w, core::AppClass cls);

/// Footprint trajectory of one originator across windows; 0 where absent
/// (the per-scanner lines of Fig 13).
std::vector<std::size_t> footprint_trajectory(std::span<const WindowResult> windows,
                                              net::IPv4Addr originator);

/// Originators of a class ranked by how many windows they appear in, then
/// by peak footprint — used to pick Figure 13's example scanners.
std::vector<net::IPv4Addr> persistent_originators(std::span<const WindowResult> windows,
                                                  core::AppClass cls,
                                                  std::size_t min_windows = 1);

}  // namespace dnsbs::analysis
