#include "analysis/pipeline.hpp"

namespace dnsbs::analysis {

WindowedPipeline::WindowedPipeline(WindowedPipelineConfig config,
                                   const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                                   const core::QuerierResolver& resolver)
    : config_(config), as_db_(as_db), geo_db_(geo_db), resolver_(resolver) {}

const WindowResult& WindowedPipeline::process_window(
    std::span<const dns::QueryRecord> records, util::SimTime start, util::SimTime end) {
  // 1. Sensor pass over this window only (fresh caches/aggregates: the
  //    paper's per-interval feature vectors).
  core::Sensor sensor(config_.sensor, as_db_, geo_db_, resolver_);
  sensor.ingest_all(records);

  labeling::WindowObservation observation;
  observation.start = start;
  observation.end = end;
  observation.features = sensor.extract_features();

  // 2. Retrain on the labeled examples re-appearing in this window, when
  //    there are enough of them; else keep yesterday's boundary (§V-C).
  auto [train, used] = labels_.join(observation.features);
  std::size_t populated = 0;
  for (const std::size_t c : train.class_counts()) {
    if (c >= config_.min_per_class) ++populated;
  }
  if (populated >= config_.min_classes) {
    ml::ForestConfig fc = config_.forest;
    fc.seed = config_.seed ^ (0x9e3779b97f4a7c15ULL * (results_.size() + 1));
    model_ = std::make_unique<ml::RandomForest>(fc);
    model_->fit(train);
  }

  // 3. Classify everything detected.
  WindowResult result;
  result.index = results_.size();
  result.start = start;
  result.end = end;
  if (model_) {
    for (const auto& fv : observation.features) {
      result.classes[fv.originator] =
          static_cast<core::AppClass>(model_->predict(fv.row()));
      result.footprints[fv.originator] = fv.footprint;
    }
  }
  observations_.push_back(std::move(observation));
  results_.push_back(std::move(result));
  return results_.back();
}

}  // namespace dnsbs::analysis
