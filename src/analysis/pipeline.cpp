#include "analysis/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace dnsbs::analysis {

namespace {
// Window/retrain/classified totals are deterministic: the train chain runs
// strictly in window order whatever the thread count.
util::MetricCounter& g_windows = util::metrics_counter("dnsbs.pipeline.windows");
util::MetricCounter& g_retrains = util::metrics_counter("dnsbs.pipeline.retrains");
util::MetricCounter& g_classified = util::metrics_counter("dnsbs.pipeline.classified");
}  // namespace

WindowedPipeline::WindowedPipeline(WindowedPipelineConfig config,
                                   const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                                   const core::QuerierResolver& resolver)
    : config_(config),
      as_db_(as_db),
      geo_db_(geo_db),
      resolver_(resolver),
      last_metrics_(util::metrics_snapshot()),
      jobs_(config.jobs) {
  if (config_.carry_forward) {
    feature_cache_ = std::make_shared<core::FeatureExtractionCache>();
  }
  if (!jobs_) {
    jobs_ = std::make_shared<util::JobSystem>(
        util::JobSystemConfig{.threads = 1, .metric_prefix = "dnsbs.pipeline.jobs"});
  }
  train_queue_ = jobs_->queue("train");
}

WindowedPipeline::~WindowedPipeline() {
  // Swallow a pending exception: it already surfaced (or will) via the
  // finish() the caller owed us; destruction must not throw.
  try {
    jobs_->drain(train_queue_);
  } catch (...) {
  }
}

void WindowedPipeline::finish() { jobs_->drain(train_queue_); }

void WindowedPipeline::enqueue_window(std::span<const dns::QueryRecord> records,
                                      util::SimTime start, util::SimTime end) {
  // Sensor pass over this window only (fresh caches/aggregates: the
  // paper's per-interval feature vectors).  Runs in the calling thread,
  // overlapping the previous window's train+classify task.
  core::Sensor sensor(config_.sensor, as_db_, geo_db_, resolver_);
  if (feature_cache_) sensor.set_feature_cache(feature_cache_);
  sensor.ingest_all(records);
  enqueue_sensor_window(sensor, start, end);
}

void WindowedPipeline::enqueue_sensor_window(core::Sensor& sensor, util::SimTime start,
                                             util::SimTime end) {
  DNSBS_SPAN("pipeline.window");
  g_windows.inc();
  // 1. Extract in the calling thread, then reconcile the sensor's pending
  //    dedup/aggregate tallies into the registry: a streaming caller feeds
  //    the sensor via per-record ingest(), which never publishes, and the
  //    boundary snapshot on the train task must see this window's counts.
  //    (Idempotent on the batch path — ingest_all already published.)
  labeling::WindowObservation observation;
  observation.start = start;
  observation.end = end;
  observation.features = sensor.extract_features();
  sensor.publish_metrics();

  // 2. Join the previous window before touching shared state: train and
  //    classify steps must run strictly in window order (the model carries
  //    over when a window is too thin to retrain).
  finish();

  // Bound memory for long-running (streaming) callers: drop the oldest
  // retained windows; absolute indices keep counting via base_index_.
  if (config_.history_limit != 0 && results_.size() >= config_.history_limit) {
    const std::size_t drop = results_.size() - config_.history_limit + 1;
    results_.erase(results_.begin(), results_.begin() + static_cast<std::ptrdiff_t>(drop));
    observations_.erase(observations_.begin(),
                        observations_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_index_ += drop;
  }

  const std::size_t position = results_.size();
  observations_.push_back(std::move(observation));
  WindowResult result;
  result.index = base_index_ + position;
  result.start = start;
  result.end = end;
  results_.push_back(std::move(result));

  // 3. Retrain + classify on the serial train queue; the caller is free
  //    to ingest the next window meanwhile.  The job only touches
  //    observations_[position], results_[position], labels_ (read) and
  //    model_ — none of which step 1 of the next enqueue reads or moves.
  jobs_->submit(train_queue_, [this, position] { train_and_classify(position); });
}

void WindowedPipeline::set_next_window_index(std::size_t index) {
  finish();
  if (!results_.empty()) {
    throw std::logic_error("set_next_window_index: windows already enqueued");
  }
  base_index_ = index;
}

void WindowedPipeline::train_and_classify(std::size_t position) {
  DNSBS_SPAN("pipeline.train");
  const labeling::WindowObservation& observation = observations_[position];
  const std::size_t index = base_index_ + position;

  // Retrain on the labeled examples re-appearing in this window, when
  // there are enough of them; else keep yesterday's boundary (§V-C).
  auto [train, used] = labels_.join(observation.features);
  std::size_t populated = 0;
  for (const std::size_t c : train.class_counts()) {
    if (c >= config_.min_per_class) ++populated;
  }
  const bool retrained = populated >= config_.min_classes;
  if (retrained) {
    g_retrains.inc();
    ml::ForestConfig fc = config_.forest;
    fc.seed = config_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    model_ = std::make_unique<ml::RandomForest>(fc);
    model_->fit(train);
  }

  // Classify everything detected, folding each prediction's vote-fraction
  // confidence into the window's decile histogram.
  WindowResult& result = results_[position];
  result.retrained = retrained;
  if (model_) {
    for (const auto& fv : observation.features) {
      const auto [cls, confidence] = model_->predict_with_confidence(fv.row());
      result.classes[fv.originator] = static_cast<core::AppClass>(cls);
      result.footprints[fv.originator] = fv.footprint;
      const auto bucket = std::min(kConfidenceBuckets - 1,
                                   static_cast<std::size_t>(confidence * 10.0));
      ++result.confidence_hist[bucket];
    }
  }
  g_classified.add(result.classes.size());

  // Window boundary: attribute the registry delta since the previous
  // boundary to this window (this task chain runs strictly in window
  // order) and emit one telemetry line per interval.
  util::MetricsSnapshot now = util::metrics_snapshot();
  result.metrics_delta = util::MetricsSnapshot::delta(last_metrics_, now);
  last_metrics_ = std::move(now);
  util::log_info(
      "pipeline",
      util::format("window %zu [%lld, %lld): records=%lld interesting=%lld "
                   "classified=%zu retrained=%s",
                   index, static_cast<long long>(result.start.secs()),
                   static_cast<long long>(result.end.secs()),
                   static_cast<long long>(result.metrics_delta.scalar("dnsbs.sensor.records")),
                   static_cast<long long>(
                       result.metrics_delta.scalar("dnsbs.sensor.interesting")),
                   result.classes.size(), retrained ? "yes" : "no"));
}

const WindowResult& WindowedPipeline::process_window(
    std::span<const dns::QueryRecord> records, util::SimTime start, util::SimTime end) {
  enqueue_window(records, start, end);
  finish();
  return results_.back();
}

}  // namespace dnsbs::analysis
