#include "analysis/pipeline.hpp"

namespace dnsbs::analysis {

WindowedPipeline::WindowedPipeline(WindowedPipelineConfig config,
                                   const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                                   const core::QuerierResolver& resolver)
    : config_(config), as_db_(as_db), geo_db_(geo_db), resolver_(resolver) {}

WindowedPipeline::~WindowedPipeline() {
  // Swallow a pending exception: it already surfaced (or will) via the
  // finish() the caller owed us; destruction must not throw.
  if (pending_.valid()) {
    try {
      pending_.get();
    } catch (...) {
    }
  }
}

void WindowedPipeline::finish() {
  if (pending_.valid()) pending_.get();
}

void WindowedPipeline::enqueue_window(std::span<const dns::QueryRecord> records,
                                      util::SimTime start, util::SimTime end) {
  // 1. Sensor pass over this window only (fresh caches/aggregates: the
  //    paper's per-interval feature vectors).  Runs in the calling thread,
  //    overlapping the previous window's train+classify task.
  core::Sensor sensor(config_.sensor, as_db_, geo_db_, resolver_);
  sensor.ingest_all(records);

  labeling::WindowObservation observation;
  observation.start = start;
  observation.end = end;
  observation.features = sensor.extract_features();

  // 2. Join the previous window before touching shared state: train and
  //    classify steps must run strictly in window order (the model carries
  //    over when a window is too thin to retrain).
  finish();

  const std::size_t index = results_.size();
  observations_.push_back(std::move(observation));
  WindowResult result;
  result.index = index;
  result.start = start;
  result.end = end;
  results_.push_back(std::move(result));

  // 3. Retrain + classify on a background task; the caller is free to
  //    ingest the next window meanwhile.  The task only touches
  //    observations_[index], results_[index], labels_ (read) and model_ —
  //    none of which step 1 of the next enqueue reads or moves.
  pending_ = std::async(std::launch::async, [this, index] { train_and_classify(index); });
}

void WindowedPipeline::train_and_classify(std::size_t index) {
  const labeling::WindowObservation& observation = observations_[index];

  // Retrain on the labeled examples re-appearing in this window, when
  // there are enough of them; else keep yesterday's boundary (§V-C).
  auto [train, used] = labels_.join(observation.features);
  std::size_t populated = 0;
  for (const std::size_t c : train.class_counts()) {
    if (c >= config_.min_per_class) ++populated;
  }
  if (populated >= config_.min_classes) {
    ml::ForestConfig fc = config_.forest;
    fc.seed = config_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    model_ = std::make_unique<ml::RandomForest>(fc);
    model_->fit(train);
  }

  // Classify everything detected.
  WindowResult& result = results_[index];
  if (model_) {
    for (const auto& fv : observation.features) {
      result.classes[fv.originator] =
          static_cast<core::AppClass>(model_->predict(fv.row()));
      result.footprints[fv.originator] = fv.footprint;
    }
  }
}

const WindowResult& WindowedPipeline::process_window(
    std::span<const dns::QueryRecord> records, util::SimTime start, util::SimTime end) {
  enqueue_window(records, start, end);
  finish();
  return results_.back();
}

}  // namespace dnsbs::analysis
