#include "analysis/teams.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dnsbs::analysis {

std::vector<BlockActivity> blocks_of_class(std::span<const WindowResult> windows,
                                           core::AppClass cls,
                                           std::size_t min_originators) {
  struct BlockState {
    std::unordered_set<std::uint32_t> members;       // class-matching addresses
    std::unordered_set<std::uint8_t> classes_seen;   // any class in the block
  };
  std::unordered_map<std::uint32_t, BlockState> blocks;
  for (const auto& w : windows) {
    for (const auto& [addr, c] : w.classes) {
      BlockState& state = blocks[addr.slash24()];
      state.classes_seen.insert(static_cast<std::uint8_t>(c));
      if (c == cls) state.members.insert(addr.value());
    }
  }
  std::vector<BlockActivity> out;
  for (const auto& [block, state] : blocks) {
    if (state.members.size() < min_originators) continue;
    out.push_back(BlockActivity{block, state.members.size(), state.classes_seen.size()});
  }
  std::sort(out.begin(), out.end(), [](const BlockActivity& a, const BlockActivity& b) {
    if (a.originators != b.originators) return a.originators > b.originators;
    return a.slash24 < b.slash24;
  });
  return out;
}

std::vector<std::size_t> block_trajectory(std::span<const WindowResult> windows,
                                          std::uint32_t slash24, core::AppClass cls) {
  std::vector<std::size_t> out;
  out.reserve(windows.size());
  for (const auto& w : windows) {
    std::size_t count = 0;
    for (const auto& [addr, c] : w.classes) {
      if (c == cls && addr.slash24() == slash24) ++count;
    }
    out.push_back(count);
  }
  return out;
}

}  // namespace dnsbs::analysis
