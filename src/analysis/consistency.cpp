#include "analysis/consistency.hpp"

#include <algorithm>
#include <unordered_map>

namespace dnsbs::analysis {

std::vector<double> consistency_ratios(std::span<const WindowResult> windows,
                                       const ConsistencyConfig& config) {
  // Per-originator class histogram across qualifying windows.
  std::unordered_map<net::IPv4Addr, std::array<std::size_t, core::kAppClassCount>> votes;
  for (const auto& w : windows) {
    for (const auto& [addr, cls] : w.classes) {
      const auto it = w.footprints.find(addr);
      const std::size_t footprint = it == w.footprints.end() ? 0 : it->second;
      if (footprint < config.min_footprint) continue;
      votes[addr][static_cast<std::size_t>(cls)]++;
    }
  }
  std::vector<double> ratios;
  for (const auto& [addr, hist] : votes) {
    std::size_t total = 0, best = 0;
    for (const std::size_t v : hist) {
      total += v;
      best = std::max(best, v);
    }
    if (total < config.min_appearances) continue;
    ratios.push_back(static_cast<double>(best) / static_cast<double>(total));
  }
  return ratios;
}

double majority_fraction(std::span<const double> ratios) {
  if (ratios.empty()) return 0.0;
  std::size_t strict = 0;
  for (const double r : ratios) {
    if (r > 0.5) ++strict;
  }
  return static_cast<double>(strict) / static_cast<double>(ratios.size());
}

}  // namespace dnsbs::analysis
