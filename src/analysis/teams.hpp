// Scanner teams: multiple originators scanning from the same /24 block
// (paper §VI-B "New and old observations" and Figure 14).  A block with
// four or more same-class originators suggests coordinated scanning.
#pragma once

#include <span>
#include <vector>

#include "analysis/window_result.hpp"

namespace dnsbs::analysis {

struct BlockActivity {
  std::uint32_t slash24 = 0;       ///< block id (address >> 8)
  std::size_t originators = 0;     ///< distinct scanning addresses seen
  std::size_t distinct_classes = 0;///< classes seen in the block (1 = aligned)
};

/// Blocks with at least `min_originators` distinct originators classified
/// `cls` across all windows, sorted by originator count descending.
std::vector<BlockActivity> blocks_of_class(std::span<const WindowResult> windows,
                                           core::AppClass cls,
                                           std::size_t min_originators);

/// Per-window count of class-`cls` originators inside one /24 block (one
/// line of Figure 14).
std::vector<std::size_t> block_trajectory(std::span<const WindowResult> windows,
                                          std::uint32_t slash24, core::AppClass cls);

}  // namespace dnsbs::analysis
