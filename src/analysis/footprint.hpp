// Footprint-size analyses (paper §VI-A/B: Figure 9's heavy-tailed
// distribution and Figure 10's top-N class mixes).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/sensor.hpp"

namespace dnsbs::analysis {

/// (footprint, fraction of originators with footprint >= x) points for a
/// log-log CCDF plot, from extracted feature vectors.
std::vector<std::pair<double, double>> footprint_ccdf(
    std::span<const core::FeatureVector> features);

/// Fraction of each application class among the top-N originators by
/// footprint (input must be footprint-sorted, as the sensor emits).
struct ClassMix {
  std::array<double, core::kAppClassCount> fraction{};
  std::size_t total = 0;
};
ClassMix class_mix_top_n(std::span<const core::ClassifiedOriginator> classified,
                         std::size_t n);

/// Count of originators per class (paper Table V rows).
std::array<std::size_t, core::kAppClassCount> class_counts(
    std::span<const core::ClassifiedOriginator> classified);

}  // namespace dnsbs::analysis
