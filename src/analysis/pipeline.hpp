// Windowed operation: the paper's recommended deployment loop (§V-F).
//
// Long-running studies process backscatter in fixed windows (a day or a
// week): each window's query log runs through a fresh Sensor, the
// classifier is retrained on the curated labels' *fresh* feature vectors
// ("adapting the classification boundary using fresh feature vector
// observations and re-training daily"), and every detected originator is
// classified.  WindowedPipeline packages that loop behind one call per
// window so operators and the longitudinal benches share one code path.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "analysis/window_result.hpp"
#include "core/sensor.hpp"
#include "labeling/ground_truth.hpp"
#include "labeling/strategies.hpp"
#include "ml/forest.hpp"
#include "util/jobs.hpp"

namespace dnsbs::analysis {

struct WindowedPipelineConfig {
  core::SensorConfig sensor;
  ml::ForestConfig forest;
  /// Retraining needs at least this many classes with >= min_per_class
  /// examples in the window; otherwise the previous model is reused.
  std::size_t min_classes = 2;
  std::size_t min_per_class = 2;
  std::uint64_t seed = 1;
  /// Share one feature-extraction cache across windows: querier identities
  /// are resolved once for the whole run and originators whose flattened
  /// querier histograms (and window normalizers) repeat reuse their prior
  /// rows.  Rows stay byte-identical to independent per-window extraction
  /// as long as the resolver and AS/geo databases are stable over the run
  /// (the simulator's naming model is); disable when reverse names drift
  /// between windows, e.g. live resolvers with changing PTR data.
  bool carry_forward = true;
  /// Keep at most this many windows of results/observations in memory
  /// (0 = unlimited).  Long-running daemons set this: WindowResult.index
  /// stays absolute across trims, only the retained prefix is dropped.
  std::size_t history_limit = 0;
  /// Job system the train+classify chain runs on (queue "train").  Null
  /// means the pipeline owns a single-worker system of its own; the
  /// streaming daemon shares one system across its close/train/export
  /// queues so a bounded worker pool serves the whole window pipeline.
  std::shared_ptr<util::JobSystem> jobs;
};

class WindowedPipeline {
 public:
  WindowedPipeline(WindowedPipelineConfig config, const netdb::AsDb& as_db,
                   const netdb::GeoDb& geo_db, const core::QuerierResolver& resolver);
  ~WindowedPipeline();

  /// Installs (or replaces) the curated labeled set; typically called
  /// once after the first curation and again at re-curation dates.
  /// Joins any in-flight window first.
  void set_labels(labeling::GroundTruth labels) {
    finish();
    labels_ = std::move(labels);
  }
  const labeling::GroundTruth& labels() const noexcept { return labels_; }

  /// Processes one window's query records: sensor pass, optional retrain
  /// on re-appearing labeled examples, classification of every detected
  /// originator.  Returns the window's result (also retained internally).
  /// Equivalent to enqueue_window() + finish().
  const WindowResult& process_window(std::span<const dns::QueryRecord> records,
                                     util::SimTime start, util::SimTime end);

  /// Pipelined variant: runs this window's sensor pass in the calling
  /// thread while the *previous* window's retrain + classification still
  /// runs on a background task, then hands this window to the background
  /// task chain.  Train/classify steps execute strictly in window order,
  /// so results are byte-identical to repeated process_window() calls.
  /// Call finish() (or any accessor that implies it) before reading
  /// results of the last enqueued window.
  void enqueue_window(std::span<const dns::QueryRecord> records, util::SimTime start,
                      util::SimTime end);

  /// Streaming variant: the caller owns a Sensor it has been feeding
  /// record-by-record (the dnsbs_serve intake path) and hands it over at
  /// the window boundary.  Extracts features and reconciles the sensor's
  /// pending metric tallies in the calling thread, then submits the window
  /// to the ordered train+classify chain exactly like enqueue_window().
  /// The sensor should share feature_cache() if carry-forward matters; it
  /// may be destroyed as soon as this returns.
  void enqueue_sensor_window(core::Sensor& sensor, util::SimTime start, util::SimTime end);

  /// Joins the in-flight window, if any; rethrows its exception.
  void finish();

  /// The job system the train chain runs on (the config's, or the
  /// pipeline-owned default).  The streaming driver and daemon register
  /// their close/export queues on it so one worker pool serves the whole
  /// async window pipeline.
  const std::shared_ptr<util::JobSystem>& jobs() const noexcept { return jobs_; }

  /// The most recently enqueued window's result, joined.  The streaming
  /// driver patches metrics_delta attribution here (async mode splits the
  /// delta between drive-thread and close-queue series); everyone else
  /// should read results().
  WindowResult& back_result() {
    finish();
    return results_.back();
  }

  /// The carry-forward extraction cache (null when carry_forward is off).
  /// Streaming callers attach it to their sensors before ingesting.
  const std::shared_ptr<core::FeatureExtractionCache>& feature_cache() const noexcept {
    return feature_cache_;
  }

  const WindowedPipelineConfig& config() const noexcept { return config_; }

  /// Absolute index the next enqueued window will get.  Joins in-flight
  /// work (the counter is shared with the train chain's bookkeeping).
  std::size_t next_window_index() {
    finish();
    return base_index_ + results_.size();
  }

  /// Re-bases window numbering after a checkpoint restore so retrain seeds
  /// and result indices continue the uninterrupted sequence.  Only valid
  /// before the first window is enqueued (or after results were trimmed to
  /// empty); asserts via std::logic_error otherwise.
  void set_next_window_index(std::size_t index);

  /// Registry snapshot at the last completed window boundary — the base
  /// the next window's metrics_delta will be measured against.  Exposed
  /// for checkpointing; set_boundary_metrics() restores it.  Both join
  /// in-flight work.
  const util::MetricsSnapshot& boundary_metrics() {
    finish();
    return last_metrics_;
  }
  void set_boundary_metrics(util::MetricsSnapshot snapshot) {
    finish();
    last_metrics_ = std::move(snapshot);
  }

  /// All windows processed so far, in order.  Joins in-flight work.
  const std::vector<WindowResult>& results() {
    finish();
    return results_;
  }

  /// The per-window sensor observations (feature vectors), kept for
  /// strategy evaluation and re-curation.  Joins in-flight work.
  const std::vector<labeling::WindowObservation>& observations() {
    finish();
    return observations_;
  }

  /// True if a usable model exists (training has succeeded at least once).
  /// Joins in-flight work (the model is trained on the background task).
  bool has_model() {
    finish();
    return model_ != nullptr;
  }

 private:
  /// Retrain-if-possible + classify for the window at vector `position`
  /// (absolute index = base_index_ + position); runs on the background
  /// task chain, strictly in window order.
  void train_and_classify(std::size_t position);

  WindowedPipelineConfig config_;
  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  const core::QuerierResolver& resolver_;
  /// Registry state at the last window boundary; each finished window's
  /// metrics_delta is measured against it (on the ordered train task).
  util::MetricsSnapshot last_metrics_;
  /// Carry-forward extraction cache shared by every window's sensor (null
  /// when config_.carry_forward is off).  Sensor passes run one at a time
  /// on the calling thread, so the cache is never touched concurrently.
  std::shared_ptr<core::FeatureExtractionCache> feature_cache_;
  labeling::GroundTruth labels_;
  std::unique_ptr<ml::RandomForest> model_;
  std::vector<WindowResult> results_;
  std::vector<labeling::WindowObservation> observations_;
  /// Absolute index of results_[0]; advanced by history trims and by
  /// set_next_window_index() after a restore.
  std::size_t base_index_ = 0;
  /// Job system + serial queue the train+classify chain runs on.  The
  /// queue's FIFO order is the determinism argument: train steps execute
  /// strictly in window order whatever the worker count.
  std::shared_ptr<util::JobSystem> jobs_;
  util::JobSystem::QueueId train_queue_ = 0;
};

}  // namespace dnsbs::analysis
