// Windowed operation: the paper's recommended deployment loop (§V-F).
//
// Long-running studies process backscatter in fixed windows (a day or a
// week): each window's query log runs through a fresh Sensor, the
// classifier is retrained on the curated labels' *fresh* feature vectors
// ("adapting the classification boundary using fresh feature vector
// observations and re-training daily"), and every detected originator is
// classified.  WindowedPipeline packages that loop behind one call per
// window so operators and the longitudinal benches share one code path.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "analysis/window_result.hpp"
#include "core/sensor.hpp"
#include "labeling/ground_truth.hpp"
#include "labeling/strategies.hpp"
#include "ml/forest.hpp"

namespace dnsbs::analysis {

struct WindowedPipelineConfig {
  core::SensorConfig sensor;
  ml::ForestConfig forest;
  /// Retraining needs at least this many classes with >= min_per_class
  /// examples in the window; otherwise the previous model is reused.
  std::size_t min_classes = 2;
  std::size_t min_per_class = 2;
  std::uint64_t seed = 1;
};

class WindowedPipeline {
 public:
  WindowedPipeline(WindowedPipelineConfig config, const netdb::AsDb& as_db,
                   const netdb::GeoDb& geo_db, const core::QuerierResolver& resolver);

  /// Installs (or replaces) the curated labeled set; typically called
  /// once after the first curation and again at re-curation dates.
  void set_labels(labeling::GroundTruth labels) { labels_ = std::move(labels); }
  const labeling::GroundTruth& labels() const noexcept { return labels_; }

  /// Processes one window's query records: sensor pass, optional retrain
  /// on re-appearing labeled examples, classification of every detected
  /// originator.  Returns the window's result (also retained internally).
  const WindowResult& process_window(std::span<const dns::QueryRecord> records,
                                     util::SimTime start, util::SimTime end);

  /// All windows processed so far, in order.
  const std::vector<WindowResult>& results() const noexcept { return results_; }

  /// The per-window sensor observations (feature vectors), kept for
  /// strategy evaluation and re-curation.
  const std::vector<labeling::WindowObservation>& observations() const noexcept {
    return observations_;
  }

  /// True if a usable model exists (training has succeeded at least once).
  bool has_model() const noexcept { return model_ != nullptr; }

 private:
  WindowedPipelineConfig config_;
  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  const core::QuerierResolver& resolver_;
  labeling::GroundTruth labels_;
  std::unique_ptr<ml::RandomForest> model_;
  std::vector<WindowResult> results_;
  std::vector<labeling::WindowObservation> observations_;
};

}  // namespace dnsbs::analysis
