#include "analysis/churn_analysis.hpp"

#include <unordered_set>

namespace dnsbs::analysis {

std::vector<ChurnPoint> weekly_churn(std::span<const WindowResult> windows,
                                     core::AppClass cls) {
  std::vector<ChurnPoint> out;
  std::unordered_set<net::IPv4Addr> previous;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::unordered_set<net::IPv4Addr> current;
    for (const auto& [addr, c] : windows[w].classes) {
      if (c == cls) current.insert(addr);
    }
    ChurnPoint point;
    point.window = w;
    for (const auto& addr : current) {
      previous.contains(addr) ? ++point.continuing : ++point.fresh;
    }
    for (const auto& addr : previous) {
      if (!current.contains(addr)) ++point.departing;
    }
    out.push_back(point);
    previous = std::move(current);
  }
  return out;
}

double mean_turnover(std::span<const ChurnPoint> churn) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 1; i < churn.size(); ++i) {
    const std::size_t present = churn[i].fresh + churn[i].continuing;
    if (present == 0) continue;
    sum += static_cast<double>(churn[i].fresh) / static_cast<double>(present);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace dnsbs::analysis
