#include "analysis/footprint.hpp"

#include "util/stats.hpp"

namespace dnsbs::analysis {

std::vector<std::pair<double, double>> footprint_ccdf(
    std::span<const core::FeatureVector> features) {
  std::vector<double> sizes;
  sizes.reserve(features.size());
  for (const auto& fv : features) sizes.push_back(static_cast<double>(fv.footprint));
  return util::ccdf(std::move(sizes));
}

ClassMix class_mix_top_n(std::span<const core::ClassifiedOriginator> classified,
                         std::size_t n) {
  ClassMix mix;
  const std::size_t limit = std::min(n, classified.size());
  for (std::size_t i = 0; i < limit; ++i) {
    ++mix.fraction[static_cast<std::size_t>(classified[i].predicted)];
    ++mix.total;
  }
  if (mix.total > 0) {
    for (double& f : mix.fraction) f /= static_cast<double>(mix.total);
  }
  return mix;
}

std::array<std::size_t, core::kAppClassCount> class_counts(
    std::span<const core::ClassifiedOriginator> classified) {
  std::array<std::size_t, core::kAppClassCount> counts{};
  for (const auto& c : classified) ++counts[static_cast<std::size_t>(c.predicted)];
  return counts;
}

}  // namespace dnsbs::analysis
