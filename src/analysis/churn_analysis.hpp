// Week-by-week originator churn for one class (paper Figure 15): how many
// detected originators are new, continuing from the previous window, or
// departed since it.
#pragma once

#include <span>
#include <vector>

#include "analysis/window_result.hpp"

namespace dnsbs::analysis {

struct ChurnPoint {
  std::size_t window = 0;
  std::size_t fresh = 0;       ///< present now, absent previous window
  std::size_t continuing = 0;  ///< present in both
  std::size_t departing = 0;   ///< present previous window, absent now
};

std::vector<ChurnPoint> weekly_churn(std::span<const WindowResult> windows,
                                     core::AppClass cls);

/// Mean turnover rate: fresh / (fresh + continuing), averaged over windows
/// after the first (the paper reports ~20% per week for scanners).
double mean_turnover(std::span<const ChurnPoint> churn);

}  // namespace dnsbs::analysis
