#include "analysis/streaming.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <string_view>
#include <utility>

#include "util/binio.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace dnsbs::analysis {

namespace {

constexpr char kMagic[8] = {'D', 'N', 'S', 'B', 'S', 'C', 'K', 'P'};
// v2: appended the per-window telemetry history ring (PR 9).
// v3: appended the drive-side (ingest) attribution snapshot (PR 10) so a
//     restored driver keeps splitting window metric deltas exactly.
constexpr std::uint32_t kVersion = 3;

// All three are deterministic: window opens/closes and lateness are pure
// functions of the record timestamp stream.
util::MetricCounter& g_opened = util::metrics_counter("dnsbs.serve.windows_opened");
util::MetricCounter& g_closed = util::metrics_counter("dnsbs.serve.windows_closed");
util::MetricCounter& g_late = util::metrics_counter("dnsbs.serve.late_dropped");

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Deterministic series written on the drive (offering) side of the
/// pipeline: per-packet decode tallies, the daemon's packet counters,
/// window open/close/lateness bookkeeping, and the per-record aggregate
/// counters bumped inside Sensor::ingest().  In async mode these keep
/// advancing while a close job runs, so a window's share of them is
/// measured between close *enqueues* (where the drive thread is the only
/// writer) instead of between close-side registry snapshots.  Everything
/// else that is deterministic publishes on the close side (sensor
/// watermark reconciliation, extraction, training) in close-queue order.
bool ingest_side_series(std::string_view name) {
  return name.starts_with("dnsbs.capture.") || name == "dnsbs.serve.packets" ||
         name == "dnsbs.serve.bad_stamp" || name == "dnsbs.serve.windows_opened" ||
         name == "dnsbs.serve.windows_closed" || name == "dnsbs.serve.late_dropped" ||
         name == "dnsbs.aggregate.originators_created" ||
         name == "dnsbs.aggregate.sketch_promotions";
}

/// Overwrites the drive-side series of a close-side delta with the values
/// measured between close enqueues.  In sync mode the two agree (nothing
/// runs between seal and train), so patching is an identity there — one
/// code path serves both modes.
void apply_ingest_delta(util::MetricsSnapshot& delta,
                        const util::MetricsSnapshot& ingest_delta) {
  for (util::MetricValue& v : delta.values) {
    if (!ingest_side_series(v.name)) continue;
    if (const util::MetricValue* s = ingest_delta.find(v.name)) {
      v.count = s->count;
      v.gauge = s->gauge;
    } else {
      v.count = 0;
      v.gauge = 0;
    }
  }
}

}  // namespace

StreamingWindowDriver::StreamingWindowDriver(StreamingConfig config,
                                             WindowedPipeline& pipeline,
                                             const netdb::AsDb& as_db,
                                             const netdb::GeoDb& geo_db,
                                             const core::QuerierResolver& resolver)
    : config_(config),
      pipeline_(pipeline),
      as_db_(as_db),
      geo_db_(geo_db),
      resolver_(resolver),
      jobs_(pipeline.jobs()),
      ingest_boundary_(util::metrics_snapshot()),
      telemetry_(config.telemetry_capacity, config.drift_warn_threshold) {
  // 0 or out-of-range hop means tumbling windows; a hop wider than the
  // window would leave uncovered gaps in the stream.
  if (config_.hop.secs() <= 0 || config_.hop > config_.window) {
    config_.hop = config_.window;
  }
  if (config_.async_windows) close_queue_ = jobs_->queue("close");
}

StreamingWindowDriver::~StreamingWindowDriver() {
  // Queued close jobs reference this driver; they must land before the
  // members they touch go away.  Errors already surfaced (or were owed
  // to) a quiesce barrier.
  if (config_.async_windows) {
    try {
      jobs_->drain(close_queue_);
    } catch (...) {
    }
  }
}

std::unique_ptr<core::Sensor> StreamingWindowDriver::make_sensor() const {
  auto sensor = std::make_unique<core::Sensor>(pipeline_.config().sensor, as_db_, geo_db_,
                                               resolver_);
  if (pipeline_.feature_cache()) sensor->set_feature_cache(pipeline_.feature_cache());
  return sensor;
}

void StreamingWindowDriver::open_due_windows(util::SimTime t) {
  while (next_start_ <= t) {
    windows_.push_back(OpenWindow{next_start_, make_sensor()});
    g_opened.inc();
    next_start_ += config_.hop;
  }
}

void StreamingWindowDriver::close_front() {
  OpenWindow window = std::move(windows_.front());
  windows_.pop_front();
  // Attribution point for drive-side series: everything this thread
  // bumped since the previous close enqueue belongs to this window —
  // captured before this close's own windows_closed tick, which (like
  // the sync path always did) lands in the *next* window's delta.
  util::MetricsSnapshot now = util::metrics_snapshot();
  util::MetricsSnapshot ingest_delta =
      util::MetricsSnapshot::delta(ingest_boundary_, now);
  ingest_boundary_ = std::move(now);
  ++windows_closed_;
  g_closed.inc();

  if (config_.async_windows) {
    // Hand the sealed sensor to the serial close queue; shared_ptr only
    // because std::function requires a copyable closure.
    std::shared_ptr<core::Sensor> sensor(std::move(window.sensor));
    jobs_->submit(close_queue_,
                  [this, sensor, start = window.start,
                   delta = std::move(ingest_delta)] {
                    complete_window(*sensor, start, delta);
                  });
  } else {
    complete_window(*window.sensor, window.start, ingest_delta);
  }
}

void StreamingWindowDriver::complete_window(core::Sensor& sensor, util::SimTime start,
                                            const util::MetricsSnapshot& ingest_delta) {
  pipeline_.enqueue_sensor_window(sensor, start, start + config_.window);
  pipeline_.finish();
  WindowResult& result = pipeline_.back_result();
  apply_ingest_delta(result.metrics_delta, ingest_delta);
  if (config_.telemetry_capacity > 0) record_telemetry(result);
  if (on_close_) on_close_(result, pipeline_.observations().back());
}

void StreamingWindowDriver::record_telemetry(const WindowResult& r) {
  const util::MetricsSnapshot& d = r.metrics_delta;

  WindowTelemetry entry;
  entry.index = r.index;
  entry.start_secs = r.start.secs();
  entry.end_secs = r.end.secs();
  entry.records = d.scalar("dnsbs.sensor.records");
  entry.interesting = d.scalar("dnsbs.sensor.interesting");
  entry.dedup_admitted = d.scalar("dnsbs.dedup.admitted");
  entry.dedup_suppressed = d.scalar("dnsbs.dedup.suppressed");
  entry.late_records = d.scalar("dnsbs.serve.late_dropped");
  entry.classified = r.classes.size();
  entry.retrained = r.retrained;
  entry.confidence_hist = r.confidence_hist;
  for (const auto& [addr, cls] : r.classes) {
    const auto i = static_cast<std::size_t>(cls);
    if (i < entry.class_counts.size()) ++entry.class_counts[i];
  }
  entry.queue_depth_peak = queue_depth_peak_.exchange(0, std::memory_order_relaxed);

  const WindowTelemetry& stored = telemetry_.record(std::move(entry));
  if (stored.drift_warned) {
    util::log_warn(
        "telemetry",
        util::format("window %llu class-mix drift %.3f exceeds %.3f vs trailing baseline",
                     static_cast<unsigned long long>(stored.index), stored.drift,
                     config_.drift_warn_threshold));
  }
}

void StreamingWindowDriver::offer(const dns::QueryRecord& record) {
  const util::SimTime t = record.time;
  if (!started_) {
    started_ = true;
    // Anchor the hop grid at epoch 0 so window boundaries are absolute —
    // independent of when the capture happened to start.
    next_start_ =
        util::SimTime::seconds(floor_div(t.secs(), config_.hop.secs()) * config_.hop.secs());
  }
  stream_time_ = std::max(stream_time_, t);
  // Open every window whose start the clock has reached, then close every
  // window whose end has passed — in start order, so a traffic gap larger
  // than a window still emits its (empty) windows in sequence.
  open_due_windows(t);
  while (!windows_.empty() && windows_.front().start + config_.window <= t) close_front();

  bool covered = false;
  for (OpenWindow& w : windows_) {
    if (w.start <= t && t < w.start + config_.window) {
      w.sensor->ingest(record);
      covered = true;
    }
  }
  // A record no open window covers arrived out of order, after its windows
  // already closed (the forward path always has at least one cover).
  if (!covered) {
    ++late_records_;
    g_late.inc();
  }
}

void StreamingWindowDriver::flush() {
  while (!windows_.empty()) close_front();
  // Flush promises complete results: every sealed window has landed.
  quiesce();
}

void StreamingWindowDriver::quiesce() {
  if (config_.async_windows) jobs_->drain(close_queue_);
  pipeline_.finish();
}

void StreamingWindowDriver::publish_pending_metrics() {
  quiesce();
  for (OpenWindow& w : windows_) w.sensor->publish_metrics();
}

bool StreamingWindowDriver::save(std::ostream& out_stream) {
  // Quiesce: land queued close work and the train chain, then reconcile
  // every open sensor's pending tallies into the registry so the snapshot
  // written below matches the published watermarks serialized with each
  // sensor.  A checkpoint requested mid-close is therefore slot-exact.
  publish_pending_metrics();

  util::BinaryWriter out(out_stream);
  out.bytes(kMagic, sizeof(kMagic));
  out.u32(kVersion);
  out.i64(config_.window.secs());
  out.i64(config_.hop.secs());
  out.u8(started_ ? 1 : 0);
  out.i64(next_start_.secs());
  out.i64(stream_time_.secs());
  out.u64(windows_closed_);
  out.u64(late_records_);
  pipeline_.boundary_metrics().save(out);
  ingest_boundary_.save(out);
  const util::MetricsSnapshot registry = util::metrics_snapshot();
  registry.save(out);
  const auto& cache = pipeline_.feature_cache();
  out.u8(cache ? 1 : 0);
  if (cache) cache->save(out);
  out.u64(windows_.size());
  for (const OpenWindow& w : windows_) {
    out.i64(w.start.secs());
    w.sensor->save_state(out);
  }
  // Full-fidelity telemetry history (including sched fields): a restored
  // daemon must answer HISTORY exactly as the checkpointed one would.
  telemetry_.save(out);
  out.i64(queue_depth_peak_.load(std::memory_order_relaxed));
  return out.ok();
}

bool StreamingWindowDriver::restore(std::istream& in_stream) {
  util::BinaryReader in(in_stream);
  char magic[8] = {};
  if (!in.bytes(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  if (in.u32() != kVersion) return false;
  if (in.i64() != config_.window.secs() || in.i64() != config_.hop.secs()) return false;
  started_ = in.u8() != 0;
  next_start_ = util::SimTime::seconds(in.i64());
  stream_time_ = util::SimTime::seconds(in.i64());
  windows_closed_ = in.u64();
  late_records_ = in.u64();
  util::MetricsSnapshot boundary;
  util::MetricsSnapshot ingest_boundary;
  util::MetricsSnapshot registry;
  if (!boundary.load(in) || !ingest_boundary.load(in) || !registry.load(in)) return false;
  const bool has_cache = in.u8() != 0;
  if (!in.ok() || has_cache != (pipeline_.feature_cache() != nullptr)) return false;
  if (has_cache && !pipeline_.feature_cache()->load(in)) return false;
  const std::uint64_t open = in.u64();
  if (!in.ok() || open > (std::uint64_t{1} << 20)) return false;
  windows_.clear();
  for (std::uint64_t i = 0; i < open; ++i) {
    OpenWindow w{util::SimTime::seconds(in.i64()), make_sensor()};
    if (!in.ok() || !w.sensor->load_state(in)) return false;
    windows_.push_back(std::move(w));
  }
  if (!telemetry_.load(in)) return false;
  queue_depth_peak_.store(in.i64(), std::memory_order_relaxed);
  if (!in.ok()) return false;
  // State validated: install the registry and window numbering.  The
  // registry already contains the checkpoint-time tallies; the restored
  // sensors' watermarks agree, so nothing double-publishes.
  util::metrics_restore(registry);
  pipeline_.set_boundary_metrics(std::move(boundary));
  ingest_boundary_ = std::move(ingest_boundary);
  pipeline_.set_next_window_index(windows_closed_);
  return in.ok();
}

}  // namespace dnsbs::analysis
