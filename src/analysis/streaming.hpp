// Continuous windowed operation for the streaming daemon.
//
// The batch pipeline (analysis/pipeline.hpp) receives one window's records
// as a span; a live capture point has no such luxury — packets arrive one
// at a time and the window boundaries come from the packet timestamps.
// StreamingWindowDriver turns a record-at-a-time stream into the same
// per-window Sensor passes the batch path runs: it keeps a Sensor per open
// window on a fixed hop grid, feeds every record to all covering windows,
// and hands each window to the WindowedPipeline's ordered train+classify
// chain when stream time passes its end.
//
// Two execution modes, one output contract:
//
//   * synchronous (async_windows = false): a window close runs feature
//     extraction, training, classification, telemetry and the close
//     callback inline in offer() — the caller stalls for the duration.
//   * asynchronous (async_windows = true): offer() only assigns records
//     to open sensors; a close hands the sealed sensor to the job
//     system's serial "close" queue, where the same steps run while the
//     caller keeps ingesting.
//
// The async mode emits byte-identical windows, telemetry and
// deterministic metric deltas.  The argument: (1) the close queue is
// FIFO-serial, so every registry mutation made by close work happens in
// exactly the sync order; (2) deterministic series bumped on the *drive*
// side (capture decode, packet counts, window opens/closes, lateness,
// per-record aggregate creation/promotion) keep advancing during an async
// close, so each window's share of those series is snapshotted at close
// *enqueue* time — between two enqueues the drive thread is the only
// writer — and patched over the close-side delta, reproducing the sync
// attribution exactly.  Scheduling-shaped series (sched flag, histograms)
// are outside the contract, as everywhere else.
//
// Clocking is stream time, not wall time: windows open and close as record
// timestamps advance, so replaying a capture yields byte-identical results
// regardless of replay speed — the property the checkpoint/restart
// contract (save()/restore()) is tested against.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>

#include "analysis/pipeline.hpp"
#include "analysis/telemetry.hpp"

namespace dnsbs::analysis {

struct StreamingConfig {
  /// Window width in stream time (paper: a day or a week).
  util::SimTime window = util::SimTime::seconds(86400);
  /// Hop between window starts; 0 or == window means tumbling windows,
  /// smaller values give overlapping (sliding) windows.  Must not exceed
  /// the window width (gaps would silently drop records).
  util::SimTime hop{};
  /// Run window closes on the pipeline's job system ("close" queue)
  /// instead of inline in offer().  Output stays byte-identical (see the
  /// header comment); offer() stops stalling across window boundaries.
  /// Errors thrown by async close work surface at the next quiesce
  /// barrier (flush/save/publish_pending_metrics) instead of in offer().
  bool async_windows = false;
  /// Per-window telemetry ring size (HISTORY verb / GET /windows); 0
  /// disables retention.  Entries are recorded at window close in both
  /// modes.
  std::size_t telemetry_capacity = 256;
  /// WARN when a window's class-mix drift from the trailing baseline
  /// exceeds this total-variation distance (0..1).
  double drift_warn_threshold = 0.5;
};

/// Drives a WindowedPipeline from a record-at-a-time stream.
///
/// The pipeline must be dedicated to this driver (window numbering is
/// shared), and should be freshly constructed when restore() is used.
/// offer()/flush()/save()/restore() belong to one drive thread; in async
/// mode the close work runs on the pipeline's job system and every shared
/// touch point is serialized through quiesce barriers.
class StreamingWindowDriver {
 public:
  /// Invoked once per closed window, after the result is complete and its
  /// telemetry entry recorded — on the closing thread: the drive thread
  /// in sync mode, a job-system worker in async mode.  The references are
  /// valid for the duration of the call.  The daemon renders its
  /// --windows-out summary block here; the callback must not re-enter the
  /// driver.
  using WindowCloseFn =
      std::function<void(const WindowResult&, const labeling::WindowObservation&)>;

  StreamingWindowDriver(StreamingConfig config, WindowedPipeline& pipeline,
                        const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                        const core::QuerierResolver& resolver);
  ~StreamingWindowDriver();

  /// Feeds one deduplicatable record.  Advances the stream clock to the
  /// record's time: opens every window whose start has been reached,
  /// closes (seals + enqueues) every window whose end has passed, then
  /// ingests the record into each open window covering its timestamp.
  /// A record older than every open window is counted late and dropped.
  void offer(const dns::QueryRecord& record);

  /// Closes all open windows in order (end of stream / operator flush)
  /// and quiesces, so results/telemetry for every window are complete on
  /// return.  Windows close at their natural grid ends even if the stream
  /// stopped mid-window.
  void flush();

  /// Barrier: drains the close queue (async mode) and joins the
  /// pipeline's in-flight window.  On return no close work is running
  /// and none is queued; rethrows the first error captured by async
  /// close work.
  void quiesce();

  void set_window_close_callback(WindowCloseFn fn) { on_close_ = std::move(fn); }

  /// Serializes the full resumable state: stream clock, per-open-window
  /// sensor state (dedup + aggregates), the shared feature cache, the
  /// pipeline's boundary snapshot, the drive-side attribution snapshot
  /// and the whole metrics registry.  Quiesces first (a checkpoint taken
  /// mid-close waits for the close to land), so the registry snapshot
  /// matches the sensor watermarks being serialized — slot-exact in
  /// either mode.
  bool save(std::ostream& out);

  /// Restores state saved by save().  Must run on a freshly constructed
  /// driver + pipeline pair (same window grid; async_windows may differ —
  /// it is an execution strategy, not part of the stream's identity)
  /// before any offer(); restores the registry, so call it before other
  /// components publish.  Returns false (state unspecified — discard the
  /// pair) on mismatch/corruption.
  bool restore(std::istream& in);

  /// save()'s quiesce without the serialization: drains close work and
  /// reconciles every open sensor's pending tallies into the registry.
  /// The daemon's /metrics scrape runs this first so the served snapshot
  /// matches what an exit-time --metrics-out dump of the same stream
  /// would contain.
  void publish_pending_metrics();

  std::size_t open_windows() const noexcept { return windows_.size(); }
  /// Windows sealed and handed to the close path (in async mode the
  /// close work may still be in flight until the next quiesce).
  std::uint64_t windows_closed() const noexcept { return windows_closed_; }
  std::uint64_t late_records() const noexcept { return late_records_; }
  /// Stream time of the most recent record offered (start value: 0).
  util::SimTime stream_time() const noexcept { return stream_time_; }

  /// Per-window telemetry ring (empty when telemetry_capacity == 0).
  /// Written by the closing thread: in async mode, quiesce() before
  /// reading.
  const TelemetryHistory& telemetry() const noexcept { return telemetry_; }
  /// One-line JSON of the most recent `last_n` entries (0 = all) — the
  /// HISTORY verb's reply body.
  std::string history_json(std::size_t last_n = 0) const {
    return telemetry_.to_json(last_n);
  }

  /// Feeds the intake-queue watermark for the telemetry entry of the
  /// window currently accumulating; the daemon calls this from its drive
  /// thread between batches.  Resets at each window close.
  void note_queue_depth(std::size_t depth) noexcept {
    const auto d = static_cast<std::int64_t>(depth);
    std::int64_t cur = queue_depth_peak_.load(std::memory_order_relaxed);
    while (d > cur && !queue_depth_peak_.compare_exchange_weak(
                          cur, d, std::memory_order_relaxed)) {
    }
  }

 private:
  struct OpenWindow {
    util::SimTime start;
    std::unique_ptr<core::Sensor> sensor;
  };

  std::unique_ptr<core::Sensor> make_sensor() const;
  void open_due_windows(util::SimTime t);
  void close_front();
  /// The close work shared by both modes: pipeline pass, delta patch,
  /// telemetry, close callback.  Runs on the drive thread (sync) or the
  /// close queue (async).
  void complete_window(core::Sensor& sensor, util::SimTime start,
                       const util::MetricsSnapshot& ingest_delta);
  void record_telemetry(const WindowResult& result);

  StreamingConfig config_;
  WindowedPipeline& pipeline_;
  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  const core::QuerierResolver& resolver_;
  /// Job system shared with the pipeline; close_queue_ is registered on
  /// it when async_windows is on.
  std::shared_ptr<util::JobSystem> jobs_;
  util::JobSystem::QueueId close_queue_ = 0;
  std::deque<OpenWindow> windows_;
  bool started_ = false;
  /// Start of the next window to open (hop grid, anchored at epoch 0).
  util::SimTime next_start_{};
  util::SimTime stream_time_{};
  std::uint64_t windows_closed_ = 0;
  std::uint64_t late_records_ = 0;
  /// Registry state at the last close *enqueue*: the base each window's
  /// drive-side series delta is measured against (see header comment).
  util::MetricsSnapshot ingest_boundary_;
  WindowCloseFn on_close_;
  TelemetryHistory telemetry_;
  std::atomic<std::int64_t> queue_depth_peak_{0};
};

}  // namespace dnsbs::analysis
