// Continuous windowed operation for the streaming daemon.
//
// The batch pipeline (analysis/pipeline.hpp) receives one window's records
// as a span; a live capture point has no such luxury — packets arrive one
// at a time and the window boundaries come from the packet timestamps.
// StreamingWindowDriver turns a record-at-a-time stream into the same
// per-window Sensor passes the batch path runs: it keeps a Sensor per open
// window on a fixed hop grid, feeds every record to all covering windows,
// and hands each window to the WindowedPipeline's ordered train+classify
// chain when stream time passes its end.
//
// Clocking is stream time, not wall time: windows open and close as record
// timestamps advance, so replaying a capture yields byte-identical results
// regardless of replay speed — the property the checkpoint/restart
// contract (save()/restore()) is tested against.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>

#include "analysis/pipeline.hpp"
#include "analysis/telemetry.hpp"

namespace dnsbs::analysis {

struct StreamingConfig {
  /// Window width in stream time (paper: a day or a week).
  util::SimTime window = util::SimTime::seconds(86400);
  /// Hop between window starts; 0 or == window means tumbling windows,
  /// smaller values give overlapping (sliding) windows.  Must not exceed
  /// the window width (gaps would silently drop records).
  util::SimTime hop{};
  /// Join the pipeline's train+classify task at every window close.  The
  /// daemon runs synchronously: the registry snapshot a window's
  /// metrics_delta is measured against must not race the next window's
  /// publish.  Batch-style callers that diff results only at the end can
  /// disable this to overlap train with ingest.
  bool synchronous = true;
  /// Per-window telemetry ring size (HISTORY verb / GET /windows); 0
  /// disables retention.  Entries are recorded at window close, which
  /// requires synchronous mode (asynchronous callers get no telemetry).
  std::size_t telemetry_capacity = 256;
  /// WARN when a window's class-mix drift from the trailing baseline
  /// exceeds this total-variation distance (0..1).
  double drift_warn_threshold = 0.5;
};

/// Drives a WindowedPipeline from a record-at-a-time stream.
///
/// The pipeline must be dedicated to this driver (window numbering is
/// shared), and should be freshly constructed when restore() is used.
/// Not thread-safe; the daemon calls it from its single drive thread.
class StreamingWindowDriver {
 public:
  StreamingWindowDriver(StreamingConfig config, WindowedPipeline& pipeline,
                        const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                        const core::QuerierResolver& resolver);

  /// Feeds one deduplicatable record.  Advances the stream clock to the
  /// record's time: opens every window whose start has been reached,
  /// closes (extracts + enqueues) every window whose end has passed, then
  /// ingests the record into each open window covering its timestamp.
  /// A record older than every open window is counted late and dropped.
  void offer(const dns::QueryRecord& record);

  /// Closes all open windows in order (end of stream / operator flush).
  /// Windows close at their natural grid ends even if the stream stopped
  /// mid-window.
  void flush();

  /// Serializes the full resumable state: stream clock, per-open-window
  /// sensor state (dedup + aggregates), the shared feature cache, the
  /// pipeline's boundary snapshot and the whole metrics registry.  Joins
  /// the pipeline's in-flight window and reconciles every open sensor's
  /// pending tallies first, so the registry snapshot matches the sensor
  /// watermarks being serialized.
  bool save(std::ostream& out);

  /// Restores state saved by save().  Must run on a freshly constructed
  /// driver + pipeline pair (same configs) before any offer(); restores
  /// the registry, so call it before other components publish.  Returns
  /// false (state unspecified — discard the pair) on mismatch/corruption.
  bool restore(std::istream& in);

  /// save()'s quiesce without the serialization: joins the pipeline's
  /// in-flight window and reconciles every open sensor's pending tallies
  /// into the registry.  The daemon's /metrics scrape runs this first so
  /// the served snapshot matches what an exit-time --metrics-out dump of
  /// the same stream would contain.
  void publish_pending_metrics();

  std::size_t open_windows() const noexcept { return windows_.size(); }
  std::uint64_t windows_closed() const noexcept { return windows_closed_; }
  std::uint64_t late_records() const noexcept { return late_records_; }
  /// Stream time of the most recent record offered (start value: 0).
  util::SimTime stream_time() const noexcept { return stream_time_; }

  /// Per-window telemetry ring (empty when telemetry_capacity == 0 or
  /// synchronous mode is off).
  const TelemetryHistory& telemetry() const noexcept { return telemetry_; }
  /// One-line JSON of the most recent `last_n` entries (0 = all) — the
  /// HISTORY verb's reply body.
  std::string history_json(std::size_t last_n = 0) const {
    return telemetry_.to_json(last_n);
  }

  /// Feeds the intake-queue watermark for the telemetry entry of the
  /// window currently accumulating; the daemon calls this from its drive
  /// thread between batches.  Resets at each window close.
  void note_queue_depth(std::size_t depth) noexcept {
    queue_depth_peak_ = std::max(queue_depth_peak_, static_cast<std::int64_t>(depth));
  }

 private:
  struct OpenWindow {
    util::SimTime start;
    std::unique_ptr<core::Sensor> sensor;
  };

  std::unique_ptr<core::Sensor> make_sensor() const;
  void open_due_windows(util::SimTime t);
  void close_front();
  void record_telemetry();

  StreamingConfig config_;
  WindowedPipeline& pipeline_;
  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  const core::QuerierResolver& resolver_;
  std::deque<OpenWindow> windows_;
  bool started_ = false;
  /// Start of the next window to open (hop grid, anchored at epoch 0).
  util::SimTime next_start_{};
  util::SimTime stream_time_{};
  std::uint64_t windows_closed_ = 0;
  std::uint64_t late_records_ = 0;
  TelemetryHistory telemetry_;
  std::int64_t queue_depth_peak_ = 0;
};

}  // namespace dnsbs::analysis
