// Classification consistency over time (paper §V-E, Figure 8): for each
// originator observed in several weekly windows, r = the fraction of
// windows in which its most common (plurality) class was assigned.  High
// r = the sensor tells a stable story about that address.
#pragma once

#include <span>
#include <vector>

#include "analysis/window_result.hpp"

namespace dnsbs::analysis {

struct ConsistencyConfig {
  /// Only windows where the originator's footprint >= q contribute
  /// (Figure 8 sweeps q in {20, 50, 75, 100}).
  std::size_t min_footprint = 20;
  /// Originators must appear in at least this many qualifying windows
  /// ("we show only originators that appear in four or more samples").
  std::size_t min_appearances = 4;
};

/// r values, one per qualifying originator (unsorted).
std::vector<double> consistency_ratios(std::span<const WindowResult> windows,
                                       const ConsistencyConfig& config);

/// Fraction of qualifying originators with r > 0.5 (strict majority) —
/// the paper's "85-90% provide a consistent result".
double majority_fraction(std::span<const double> ratios);

}  // namespace dnsbs::analysis
