// Shared shape for longitudinal analyses: one classified observation
// window (a day or a week of sensor output), as produced by running the
// sensor + classifier repeatedly over a long scenario (paper §VI).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "core/taxonomy.hpp"
#include "net/ipv4.hpp"
#include "util/metrics.hpp"
#include "util/time.hpp"

namespace dnsbs::analysis {

/// Fixed decile buckets for the prediction-confidence histogram:
/// bucket i holds confidences in [i/10, (i+1)/10), except the last which
/// also takes 1.0.
inline constexpr std::size_t kConfidenceBuckets = 10;

struct WindowResult {
  std::size_t index = 0;
  util::SimTime start{};
  util::SimTime end{};
  /// Predicted class per detected originator.
  std::unordered_map<net::IPv4Addr, core::AppClass> classes;
  /// Footprint (unique queriers) per detected originator.
  std::unordered_map<net::IPv4Addr, std::size_t> footprints;
  /// Histogram of RF vote-fraction confidence over this window's
  /// predictions (deciles).  Deterministic: the forest's vote tally is a
  /// pure function of model + row.
  std::array<std::uint64_t, kConfidenceBuckets> confidence_hist{};
  /// True when this window retrained the model (enough fresh labels).
  bool retrained = false;
  /// Registry delta attributed to this window (records ingested, rows
  /// extracted, retrains, ...).  Exact when windows run through
  /// process_window(); under enqueue_window() pipelining the next window's
  /// sensor pass overlaps this window's train task, so boundary
  /// attribution is approximate (totals across windows still add up).
  util::MetricsSnapshot metrics_delta;
};

}  // namespace dnsbs::analysis
