// Geolocation database: IP prefix -> ISO-3166-style country code.
//
// Stands in for the MaxMind GeoLiteCity lookups of paper §III-C ("unique
// countries ... We determine country from the IP using MaxMind").  The
// simulator allocates /8s to regions so that, as in the real Internet, the
// high octet carries geographic signal — which is exactly what the paper's
// global-entropy feature exploits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"

namespace dnsbs::netdb {

/// Two-letter country code, stored compactly.
class CountryCode {
 public:
  constexpr CountryCode() noexcept : a_('?'), b_('?') {}
  constexpr CountryCode(char a, char b) noexcept : a_(a), b_(b) {}

  static std::optional<CountryCode> parse(std::string_view s) noexcept {
    if (s.size() != 2) return std::nullopt;
    return CountryCode(s[0], s[1]);
  }

  std::string to_string() const { return std::string{a_, b_}; }
  constexpr std::uint16_t packed() const noexcept {
    return static_cast<std::uint16_t>((static_cast<unsigned char>(a_) << 8) |
                                      static_cast<unsigned char>(b_));
  }

  constexpr bool operator==(const CountryCode&) const noexcept = default;

 private:
  char a_, b_;
};

/// Region grouping used by the synthetic allocator (root-server siting in
/// the paper is continental: B-Root US-only, M-Root Asia/NA/EU).
enum class Region { kNorthAmerica, kSouthAmerica, kEurope, kAsia, kOceania, kAfrica };

/// The regions and member countries the synthetic Internet uses.
struct CountryInfo {
  CountryCode code;
  Region region;
  double weight;  ///< relative share of address space / activity
};
const std::vector<CountryInfo>& world_countries();

class GeoDb {
 public:
  void add(const net::Prefix& prefix, CountryCode country);

  std::optional<CountryCode> lookup(net::IPv4Addr addr) const noexcept;

  std::size_t prefix_count() const noexcept { return trie_.size(); }

 private:
  net::PrefixTrie<CountryCode> trie_;
};

}  // namespace dnsbs::netdb

template <>
struct std::hash<dnsbs::netdb::CountryCode> {
  std::size_t operator()(const dnsbs::netdb::CountryCode& c) const noexcept {
    return c.packed();
  }
};
