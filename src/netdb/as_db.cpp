#include "netdb/as_db.hpp"

namespace dnsbs::netdb {

void AsDb::add(const net::Prefix& prefix, Asn asn, std::string name) {
  trie_.insert(prefix, asn);
  if (!name.empty()) names_.emplace(asn, std::move(name));
}

std::optional<Asn> AsDb::lookup(net::IPv4Addr addr) const noexcept {
  const Asn* asn = trie_.lookup(addr);
  if (!asn) return std::nullopt;
  return *asn;
}

const std::string* AsDb::name_of(Asn asn) const noexcept {
  const auto it = names_.find(asn);
  return it == names_.end() ? nullptr : &it->second;
}

}  // namespace dnsbs::netdb
