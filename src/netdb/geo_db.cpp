#include "netdb/geo_db.hpp"

namespace dnsbs::netdb {

const std::vector<CountryInfo>& world_countries() {
  // Weights very roughly track Internet-user populations; exact values do
  // not matter, only that activity and address space cluster by region.
  static const std::vector<CountryInfo> kCountries = {
      {{'u', 's'}, Region::kNorthAmerica, 10.0}, {{'c', 'a'}, Region::kNorthAmerica, 1.5},
      {{'m', 'x'}, Region::kNorthAmerica, 1.2},  {{'b', 'r'}, Region::kSouthAmerica, 2.5},
      {{'a', 'r'}, Region::kSouthAmerica, 0.8},  {{'c', 'l'}, Region::kSouthAmerica, 0.4},
      {{'c', 'o'}, Region::kSouthAmerica, 0.5},  {{'d', 'e'}, Region::kEurope, 2.5},
      {{'f', 'r'}, Region::kEurope, 2.0},        {{'g', 'b'}, Region::kEurope, 2.0},
      {{'n', 'l'}, Region::kEurope, 1.0},        {{'i', 't'}, Region::kEurope, 1.2},
      {{'e', 's'}, Region::kEurope, 1.0},        {{'p', 'l'}, Region::kEurope, 0.8},
      {{'s', 'e'}, Region::kEurope, 0.5},        {{'r', 'u'}, Region::kEurope, 2.2},
      {{'u', 'a'}, Region::kEurope, 0.6},        {{'t', 'r'}, Region::kEurope, 1.0},
      {{'j', 'p'}, Region::kAsia, 3.5},          {{'c', 'n'}, Region::kAsia, 8.0},
      {{'k', 'r'}, Region::kAsia, 1.5},          {{'i', 'n'}, Region::kAsia, 4.0},
      {{'t', 'w'}, Region::kAsia, 0.8},          {{'h', 'k'}, Region::kAsia, 0.6},
      {{'s', 'g'}, Region::kAsia, 0.5},          {{'t', 'h'}, Region::kAsia, 0.8},
      {{'v', 'n'}, Region::kAsia, 0.9},          {{'i', 'd'}, Region::kAsia, 1.5},
      {{'p', 'h'}, Region::kAsia, 0.8},          {{'p', 'k'}, Region::kAsia, 0.7},
      {{'a', 'u'}, Region::kOceania, 0.8},       {{'n', 'z'}, Region::kOceania, 0.2},
      {{'z', 'a'}, Region::kAfrica, 0.5},        {{'e', 'g'}, Region::kAfrica, 0.6},
      {{'n', 'g'}, Region::kAfrica, 0.7},        {{'k', 'e'}, Region::kAfrica, 0.3},
  };
  return kCountries;
}

void GeoDb::add(const net::Prefix& prefix, CountryCode country) {
  trie_.insert(prefix, country);
}

std::optional<CountryCode> GeoDb::lookup(net::IPv4Addr addr) const noexcept {
  const CountryCode* c = trie_.lookup(addr);
  if (!c) return std::nullopt;
  return *c;
}

}  // namespace dnsbs::netdb
