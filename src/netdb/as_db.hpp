// Autonomous-system database: IP prefix -> origin ASN, whois style.
//
// The dynamic features normalize querier diversity by AS (paper §III-C:
// "unique ASes ... ASes are from IP addresses via whois").  The paper used
// live whois; we keep the same interface over a longest-prefix-match trie
// that the simulator's address plan populates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"

namespace dnsbs::netdb {

using Asn = std::uint32_t;

class AsDb {
 public:
  /// Registers a prefix as originated by `asn`; `name` registers the AS
  /// (org) name on first sight.
  void add(const net::Prefix& prefix, Asn asn, std::string name = {});

  /// Longest-prefix match; nullopt for unrouted space.
  std::optional<Asn> lookup(net::IPv4Addr addr) const noexcept;

  /// Organization name for an ASN, or nullptr if unknown.
  const std::string* name_of(Asn asn) const noexcept;

  std::size_t prefix_count() const noexcept { return trie_.size(); }
  std::size_t as_count() const noexcept { return names_.size(); }

 private:
  net::PrefixTrie<Asn> trie_;
  std::unordered_map<Asn, std::string> names_;
};

}  // namespace dnsbs::netdb
