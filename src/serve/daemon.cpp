#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "core/feature_vector.hpp"
#include "dns/capture.hpp"
#include "net/http.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace dnsbs::serve {

namespace {

// Socket-side and operational tallies depend on kernel scheduling and on
// where restarts land, so they are sched series.  packets/bad_stamp count
// the drive thread's in-order processing — pure functions of the stream —
// and stay in the deterministic view.
util::MetricCounter& g_udp =
    util::metrics_counter("dnsbs.serve.udp_datagrams", /*sched=*/true);
util::MetricCounter& g_frames =
    util::metrics_counter("dnsbs.serve.tcp_frames", /*sched=*/true);
util::MetricCounter& g_dropped =
    util::metrics_counter("dnsbs.serve.queue_dropped", /*sched=*/true);
util::MetricCounter& g_checkpoints =
    util::metrics_counter("dnsbs.serve.checkpoints", /*sched=*/true);
util::MetricCounter& g_control =
    util::metrics_counter("dnsbs.serve.control_requests", /*sched=*/true);
util::MetricCounter& g_packets = util::metrics_counter("dnsbs.serve.packets");
util::MetricCounter& g_bad_stamp = util::metrics_counter("dnsbs.serve.bad_stamp");

constexpr std::size_t kStampHeader = 12;  // 8B LE seconds + 4B LE querier
constexpr std::size_t kMaxDatagram = 65535;
constexpr int kPollMs = 100;

std::uint64_t read_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t read_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

// Trace deadlines use the steady clock directly (not the metrics clock) so
// TRACE keeps working in a -DDNSBS_METRICS=OFF build, where it produces a
// valid-but-empty capture.
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::string_view kTextPlain = "text/plain; charset=utf-8";

}  // namespace

ServeDaemon::ServeDaemon(ServeConfig config, const netdb::AsDb& as_db,
                         const netdb::GeoDb& geo_db, const core::QuerierResolver& resolver)
    : config_(std::move(config)),
      as_db_(as_db),
      geo_db_(geo_db),
      resolver_(resolver),
      jobs_(std::make_shared<util::JobSystem>(util::JobSystemConfig{
          .threads = config_.job_threads, .metric_prefix = "dnsbs.serve.jobs"})),
      queue_(config_.queue_capacity) {
  // One pool, three serial queues: the pipeline registers "train", the
  // driver "close" (async mode), the daemon "export".
  config_.pipeline.jobs = jobs_;
  export_queue_ = jobs_->queue("export");
  pipeline_ = std::make_unique<analysis::WindowedPipeline>(config_.pipeline, as_db_,
                                                           geo_db_, resolver_);
  driver_ = std::make_unique<analysis::StreamingWindowDriver>(
      config_.streaming, *pipeline_, as_db_, geo_db_, resolver_);
  driver_->set_window_close_callback(
      [this](const analysis::WindowResult& r, const labeling::WindowObservation& obs) {
        on_window_close(r, obs);
      });
}

ServeDaemon::~ServeDaemon() {
  request_stop();
  wait();
}

bool ServeDaemon::start(std::string& error) {
  if (started_) {
    error = "daemon already started";
    return false;
  }
  if (!udp_.bind(config_.bind, config_.udp_port)) {
    error = "udp bind: " + udp_.last_error();
    return false;
  }
  if (config_.tcp && !tcp_listener_.listen(config_.bind, config_.tcp_port)) {
    error = "tcp listen: " + tcp_listener_.last_error();
    return false;
  }
  if (!status_listener_.listen(config_.bind, config_.status_port)) {
    error = "status listen: " + status_listener_.last_error();
    return false;
  }

  if (config_.restore) {
    std::ifstream in(config_.checkpoint_path, std::ios::binary);
    if (!in || !driver_->restore(in)) {
      error = "checkpoint restore failed: " + config_.checkpoint_path;
      return false;
    }
    // The previous incarnation already wrote summaries for every window it
    // closed; windows_out is append-mode, so pick up where it stopped.
    {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      sequencer_.reset(driver_->windows_closed());
    }
    util::log_info("serve",
                   util::format("restored checkpoint %s: %llu windows closed, "
                                "%zu open, stream_time=%lld",
                                config_.checkpoint_path.c_str(),
                                static_cast<unsigned long long>(driver_->windows_closed()),
                                driver_->open_windows(),
                                static_cast<long long>(driver_->stream_time().secs())));
  }
  if (config_.checkpoint_every_secs > 0) {
    next_cadence_checkpoint_ = driver_->stream_time().secs() + config_.checkpoint_every_secs;
  }

  if (!config_.ready_file.empty()) {
    std::ofstream ready(config_.ready_file, std::ios::trunc);
    ready << "udp=" << udp_port() << " tcp=" << tcp_port() << " status=" << status_port()
          << "\n";
  }
  util::log_info("serve", util::format("listening udp=%u tcp=%u status=%u stamped=%s",
                                       static_cast<unsigned>(udp_port()),
                                       static_cast<unsigned>(tcp_port()),
                                       static_cast<unsigned>(status_port()),
                                       config_.stamped ? "yes" : "no"));

  started_ = true;
  udp_thread_ = std::thread([this] { udp_loop(); });
  if (config_.tcp) tcp_thread_ = std::thread([this] { tcp_loop(); });
  status_thread_ = std::thread([this] { status_loop(); });
  drive_thread_ = std::thread([this] { drive_loop(); });
  return true;
}

void ServeDaemon::request_stop() {
  stop_.store(true);
  queue_.close();
}

void ServeDaemon::wait() {
  for (std::thread* t : {&udp_thread_, &tcp_thread_, &status_thread_, &drive_thread_}) {
    if (t->joinable()) t->join();
  }
}

void ServeDaemon::udp_loop() {
  std::vector<std::uint8_t> buf(kMaxDatagram);
  while (!stop_.load()) {
    net::DatagramSource source;
    const auto n = udp_.recv_from(buf.data(), buf.size(), kPollMs, &source);
    if (!n) continue;
    g_udp.inc();
    RawPacket packet;
    packet.bytes.assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(*n));
    packet.wall_secs = static_cast<std::int64_t>(::time(nullptr));
    packet.source = source.addr;
    if (!queue_.try_push(std::move(packet))) g_dropped.inc();
  }
}

void ServeDaemon::tcp_loop() {
  while (!stop_.load()) {
    auto stream = tcp_listener_.accept(kPollMs);
    if (!stream) continue;
    tcp_active_.fetch_add(1);
    serve_tcp_connection(std::move(*stream));
    tcp_active_.fetch_sub(1);
  }
}

void ServeDaemon::serve_tcp_connection(net::TcpStream stream) {
  // Length-prefixed frames: u16 big-endian payload size, then the payload
  // (same framing as DNS-over-TCP, RFC 1035 §4.2.2).  Blocking push: a
  // full queue stalls the peer instead of dropping — replay is lossless.
  while (!stop_.load()) {
    std::uint8_t len_buf[2];
    if (!stream.read_exact(len_buf, 2, kPollMs * 50)) return;  // EOF / idle peer
    const std::size_t len = (static_cast<std::size_t>(len_buf[0]) << 8) | len_buf[1];
    RawPacket packet;
    packet.bytes.resize(len);
    if (len > 0 && !stream.read_exact(packet.bytes.data(), len, kPollMs * 50)) return;
    g_frames.inc();
    packet.wall_secs = static_cast<std::int64_t>(::time(nullptr));
    if (!queue_.push(std::move(packet))) return;
  }
}

void ServeDaemon::status_loop() {
  while (!stop_.load()) {
    auto stream = status_listener_.accept(kPollMs);
    if (!stream) continue;
    // The first line picks the protocol: an HTTP request line flips the
    // connection into one-shot HTTP mode; anything else is the line
    // protocol, one command per line until the peer hangs up.
    bool first = true;
    while (!stop_.load()) {
      auto line = stream->read_line(kPollMs * 50);
      if (!line) break;
      g_control.inc();
      if (first && net::looks_like_http_request(*line)) {
        handle_http(*stream, *line);
        break;
      }
      first = false;
      auto reply = submit_control(*line);
      const std::string answer = reply.get() + "\n";
      if (!stream->write_all(answer.data(), answer.size())) break;
      if (*line == "SHUTDOWN") break;
    }
  }
}

std::future<std::string> ServeDaemon::submit_control(std::string command) {
  auto request = std::make_unique<ControlRequest>();
  request->command = std::move(command);
  auto reply = request->reply.get_future();
  std::lock_guard<std::mutex> lock(control_mutex_);
  control_requests_.push_back(std::move(request));
  return reply;
}

void ServeDaemon::handle_http(net::TcpStream& stream, const std::string& request_line) {
  const auto finish = [&stream](int status, std::string_view type, std::string_view body) {
    const std::string response = net::http_response(status, type, body);
    stream.write_all(response.data(), response.size());
  };
  const auto request = net::read_http_request(stream, request_line, kPollMs * 50);
  if (!request) {
    finish(400, kTextPlain, "malformed request\n");
    return;
  }
  if (request->method != "GET") {
    finish(405, kTextPlain, "only GET is supported\n");
    return;
  }
  // Every route funnels through the drive thread, so the served bytes see
  // the same quiesced registry/history a checkpoint of this instant would.
  // The lowercase http.metrics verb is unreachable via `dnsbs_cli ctl`
  // (which uppercases its command), keeping the line protocol's namespace
  // clean.
  std::string verb;
  if (request->path == "/metrics") {
    verb = "http.metrics";
  } else if (request->path == "/healthz") {
    verb = "PING";
  } else if (request->path == "/windows") {
    verb = "HISTORY";
    if (const auto n = net::query_param(request->query, "n")) verb += " " + *n;
  } else {
    finish(404, kTextPlain, "not found\n");
    return;
  }
  auto reply = submit_control(std::move(verb));
  // Bounded wait: a wedged drive thread yields 503, not a hung scrape.
  if (reply.wait_for(std::chrono::seconds(30)) != std::future_status::ready) {
    finish(503, kTextPlain, "drive thread unresponsive\n");
    return;
  }
  const std::string body = reply.get();
  if (request->path == "/healthz") {
    finish(200, kTextPlain, "ok\n");
  } else if (request->path == "/windows") {
    if (body.rfind("ERR", 0) == 0) {
      finish(400, kTextPlain, body + "\n");
    } else {
      finish(200, "application/json; charset=utf-8", body + "\n");
    }
  } else {
    finish(200, "text/plain; version=0.0.4; charset=utf-8", body);
  }
}

void ServeDaemon::drive_loop() {
  std::vector<RawPacket> batch;
  while (true) {
    service_control();
    if (trace_active_ && steady_now_ns() >= trace_deadline_ns_) finish_trace();
    if (stop_.load()) break;
    batch.clear();
    const std::size_t n = queue_.pop_batch(batch, 256, 50);
    // Intake backlog watermark: what was just popped plus what is still
    // queued behind it.
    driver_->note_queue_depth(n + queue_.size());
    for (const RawPacket& p : batch) process_packet(p);
    if (n > 0 && config_.checkpoint_every_secs > 0 && !config_.checkpoint_path.empty() &&
        driver_->stream_time().secs() >= next_cadence_checkpoint_) {
      std::string why;
      if (!write_checkpoint(why)) {
        util::log_warn("serve", util::format("cadence checkpoint failed: %s",
                                             why.c_str()));
      }
      next_cadence_checkpoint_ =
          driver_->stream_time().secs() + config_.checkpoint_every_secs;
    }
  }
  // A capture cut short by SHUTDOWN still produces a loadable file.
  if (trace_active_) finish_trace();
  // SHUTDOWN barrier: land queued close work, summary appends and trace
  // dumps before the drive thread exits — wait() returning means every
  // file the daemon owed is on disk.  Open windows are NOT flushed (they
  // stay resumable from the last checkpoint).
  quiesce_pipeline();
  // Answer any control request that raced the stop flag so no client
  // blocks on a dead promise.
  service_control();
}

void ServeDaemon::quiesce_pipeline() {
  driver_->quiesce();
  jobs_->drain(export_queue_);
}

void ServeDaemon::finish_trace() {
  trace_active_ = false;
  util::trace_stop();
  // Serialization + file write ride the export queue: a large capture can
  // take a while to render and the drive thread should go straight back to
  // intake.  The buffer is stable until the next trace_start(), and the
  // TRACE verb drains this queue before restarting a capture.
  jobs_->submit(export_queue_, [this] {
    const std::string json = util::trace_export_json();
    std::ofstream out(config_.trace_out, std::ios::trunc);
    out << json;
    out.flush();
    if (!out) {
      util::log_warn("serve",
                     util::format("trace write failed: %s", config_.trace_out.c_str()));
      return;
    }
    util::log_info("serve",
                   util::format("trace written: %s (%zu events, %llu dropped)",
                                config_.trace_out.c_str(), util::trace_event_count(),
                                static_cast<unsigned long long>(util::trace_dropped())));
  });
}

void ServeDaemon::process_packet(const RawPacket& packet) {
  g_packets.inc();
  std::span<const std::uint8_t> payload(packet.bytes);
  util::SimTime time = util::SimTime::seconds(packet.wall_secs);
  net::IPv4Addr querier = packet.source;
  if (config_.stamped) {
    if (payload.size() < kStampHeader) {
      g_bad_stamp.inc();
      return;
    }
    time = util::SimTime::seconds(static_cast<std::int64_t>(read_le64(payload.data())));
    querier = net::IPv4Addr(read_le32(payload.data() + 8));
    payload = payload.subspan(kStampHeader);
  }
  const auto record = dns::record_from_packet(payload, time, querier, capture_stats_);
  if (record) driver_->offer(*record);
}

void ServeDaemon::service_control() {
  std::vector<std::unique_ptr<ControlRequest>> pending;
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    pending.swap(control_requests_);
  }
  for (auto& request : pending) {
    request->reply.set_value(handle_control(request->command));
  }
}

std::string ServeDaemon::handle_control(const std::string& command) {
  if (command == "PING") return "PONG";
  if (command == "STATS") {
    // Barrier so windows_closed/history/queue stats describe a settled
    // pipeline, not one mid-close.
    quiesce_pipeline();
    return stats_json();
  }
  if (command == "HISTORY" || command.rfind("HISTORY ", 0) == 0) {
    std::uint64_t last_n = 0;
    if (command.size() > 8 && !util::parse_u64(command.substr(8), last_n)) {
      return "ERR bad HISTORY count: " + command.substr(8);
    }
    // The telemetry ring is written by the closing thread; quiesce before
    // reading it.
    driver_->quiesce();
    return driver_->history_json(static_cast<std::size_t>(last_n));
  }
  if (command == "TRACE" || command.rfind("TRACE ", 0) == 0) {
    if (config_.trace_out.empty()) return "ERR no --trace-out configured";
    std::uint64_t secs = 5;
    if (command.size() > 6 &&
        (!util::parse_u64(command.substr(6), secs) || secs == 0 || secs > 3600)) {
      return "ERR bad TRACE seconds (want 1..3600): " + command.substr(6);
    }
    // A queued dump job reads the trace buffer trace_start() would reset;
    // let it land first.
    jobs_->drain(export_queue_);
    util::trace_start();  // restarts (and discards) any capture in flight
    trace_active_ = true;
    trace_deadline_ns_ = steady_now_ns() + secs * 1'000'000'000ull;
    return util::format("OK tracing %llus -> %s",
                        static_cast<unsigned long long>(secs),
                        config_.trace_out.c_str());
  }
  if (command == "http.metrics") {
    // Same quiesce as a checkpoint (publish_pending_metrics drains close +
    // train), so the scraped deterministic series are byte-identical to an
    // exit-time --metrics-out dump of the same stream.
    driver_->publish_pending_metrics();
    return util::metrics_snapshot().to_prometheus();
  }
  if (command == "FLUSH") {
    drain_intake();
    driver_->flush();
    // flush() quiesced the close path; land the summary appends it queued.
    jobs_->drain(export_queue_);
    return "OK flushed";
  }
  if (command == "CHECKPOINT") {
    drain_intake();
    std::string why;
    if (!write_checkpoint(why)) return "ERR " + why;
    return "OK " + config_.checkpoint_path;
  }
  if (command == "SHUTDOWN") {
    // Stop WITHOUT flushing: open windows stay resumable from the last
    // checkpoint (flushing here would emit windows the restarted process
    // would then emit again).
    request_stop();
    return "OK shutting down";
  }
  return "ERR unknown command: " + command;
}

void ServeDaemon::drain_intake() {
  // Quiesce the intake path so the checkpoint captures every record the
  // senders consider delivered: keep processing while an intake
  // connection is open or the queue is non-empty.  Bounded patience (5 s
  // of silence) so a stuck peer cannot wedge the control socket.
  std::vector<RawPacket> batch;
  int idle_rounds = 0;
  while (idle_rounds < 100) {
    batch.clear();
    const std::size_t n = queue_.pop_batch(batch, 256, 50);
    for (const RawPacket& p : batch) process_packet(p);
    if (n > 0) {
      idle_rounds = 0;
      continue;
    }
    if (tcp_active_.load() == 0 && queue_.size() == 0) break;
    ++idle_rounds;
  }
}

bool ServeDaemon::write_checkpoint(std::string& why) {
  if (config_.checkpoint_path.empty()) {
    why = "no checkpoint path configured";
    return false;
  }
  // A restore assumes summaries for every closed window are already on
  // disk (the sequencer resumes at windows_closed); make that true before
  // the checkpoint can land.  driver_->save() below quiesces close+train.
  quiesce_pipeline();
  const std::string tmp = config_.checkpoint_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !driver_->save(out)) {
      why = "write failed: " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), config_.checkpoint_path.c_str()) != 0) {
    why = "rename failed: " + config_.checkpoint_path;
    return false;
  }
  g_checkpoints.inc();
  util::log_info("serve", util::format("checkpoint written: %s (stream_time=%lld)",
                                       config_.checkpoint_path.c_str(),
                                       static_cast<long long>(
                                           driver_->stream_time().secs())));
  return true;
}

std::string ServeDaemon::stats_json() const {
  // The control protocol is one line per reply, so the metrics dump (whose
  // serializer pretty-prints) must be flattened before it ships.
  std::string metrics = util::metrics_snapshot().to_json();
  std::erase(metrics, '\n');
  std::ostringstream out;
  out << "{\"stream_time\":" << driver_->stream_time().secs()
      << ",\"open_windows\":" << driver_->open_windows()
      << ",\"windows_closed\":" << driver_->windows_closed()
      << ",\"late_records\":" << driver_->late_records()
      << ",\"history_windows\":" << driver_->telemetry().size()
      << ",\"queue_depth\":" << queue_.size() << ",\"capture\":{\"packets\":"
      << capture_stats_.packets << ",\"accepted\":" << capture_stats_.accepted
      << ",\"malformed\":" << capture_stats_.malformed
      << ",\"responses\":" << capture_stats_.responses
      << ",\"rejected_query\":" << capture_stats_.rejected_query
      << ",\"non_ptr\":" << capture_stats_.non_ptr
      << ",\"non_reverse_name\":" << capture_stats_.non_reverse_name << "},\"jobs\":[";
  const auto jobs = jobs_->stats();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& q = jobs[i];
    out << (i ? "," : "") << "{\"queue\":\"" << q.name << "\",\"depth\":" << q.depth
        << ",\"submitted\":" << q.submitted << ",\"completed\":" << q.completed
        << ",\"depth_peak\":" << q.depth_peak << "}";
  }
  out << "],\"metrics\":" << metrics << "}";
  return out.str();
}

std::string render_window_summary(const analysis::WindowResult& r,
                                  const labeling::WindowObservation& observation) {
  std::ostringstream out;
  out << "window " << r.index << " start=" << r.start.secs() << " end=" << r.end.secs()
      << "\n";
  const auto& features = observation.features;
  out << "features " << features.size() << "\n";
  for (const core::FeatureVector& fv : features) {
    out << "row " << fv.originator.to_string() << " footprint=" << fv.footprint;
    for (const double v : fv.statics) out << ' ' << hex_double(v);
    for (const double v : fv.dynamics) out << ' ' << hex_double(v);
    out << "\n";
  }
  // unordered_map iteration order is not deterministic; sort by address.
  std::vector<std::pair<net::IPv4Addr, core::AppClass>> classes(r.classes.begin(),
                                                                r.classes.end());
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out << "classes " << classes.size() << "\n";
  const auto& names = core::app_class_names();
  for (const auto& [addr, cls] : classes) {
    const auto footprint = r.footprints.find(addr);
    out << "class " << addr.to_string() << ' ' << names[static_cast<std::size_t>(cls)]
        << " footprint=" << (footprint != r.footprints.end() ? footprint->second : 0)
        << "\n";
  }
  const util::MetricsSnapshot det = r.metrics_delta.deterministic_view();
  out << "metrics " << det.values.size() << "\n";
  for (const util::MetricValue& v : det.values) {
    out << "metric " << v.name << '='
        << (v.kind == util::MetricKind::kGauge ? v.gauge
                                               : static_cast<std::int64_t>(v.count))
        << "\n";
  }
  out << "end\n";
  return out.str();
}

void ServeDaemon::on_window_close(const analysis::WindowResult& result,
                                  const labeling::WindowObservation& observation) {
  if (config_.windows_out.empty()) return;
  // Rendering (hexfloat formatting dominates) runs here, on the closing
  // thread: a close-queue worker in async mode, off the intake path.
  std::string block = render_window_summary(result, observation);
  std::vector<std::string> ready;
  {
    std::lock_guard<std::mutex> lock(summary_mutex_);
    ready = sequencer_.push(result.index, std::move(block));
  }
  if (ready.empty()) return;
  if (config_.streaming.async_windows) {
    // File appends ride the serial export queue; blocks leave the (also
    // serial) close queue in window order, so appends land in order too.
    jobs_->submit(export_queue_, [this, blocks = std::move(ready)] {
      append_summaries(blocks);
    });
  } else {
    append_summaries(ready);
  }
}

void ServeDaemon::append_summaries(const std::vector<std::string>& blocks) {
  std::ofstream out(config_.windows_out, std::ios::app);
  for (const std::string& block : blocks) out << block;
}

}  // namespace dnsbs::serve
