// The dnsbs_serve daemon: live DNS backscatter intake over real sockets.
//
// Layout (one process, four threads):
//
//   udp thread    recvfrom() -> RawPacket -> try_push (drop + count when full)
//   tcp thread    accept(); length-prefixed frames -> blocking push (lossless)
//   status thread accept(); line commands (STATS/HISTORY/TRACE/CHECKPOINT/
//                 FLUSH/SHUTDOWN/PING) forwarded to the drive thread, reply
//                 written back.  The same socket answers HTTP/1.1 GETs
//                 (/metrics, /healthz, /windows): the first line of a
//                 connection picks the protocol.
//   drive thread  pops packet batches, decodes via dns::record_from_packet,
//                 offers records to the StreamingWindowDriver (which owns
//                 window open/close against the WindowedPipeline), writes
//                 window summaries, services control requests, checkpoints,
//                 finishes timed trace captures (TRACE <secs>)
//
// Determinism: everything that feeds deterministic metric series — packet
// decode, dedup/aggregate ingest, window close — runs on the single drive
// thread in arrival order, so a replayed stream produces byte-identical
// windows.  Socket-side tallies (datagrams seen, queue drops, frames) are
// sched-flagged: they depend on kernel timing, not on the stream.
//
// Timestamps: with `stamped` framing each payload carries its own stream
// time and querier ([8B LE seconds][4B LE querier IPv4][DNS message]),
// making replays self-clocking and loss-free over TCP — the mode the
// checkpoint/restart byte-identity contract is verified in.  Without it,
// the record time is the wall clock at receipt and the querier is the
// datagram's source address (live capture mode; inherently not
// replay-deterministic).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/streaming.hpp"
#include "dns/capture.hpp"
#include "net/socket.hpp"
#include "serve/intake.hpp"

namespace dnsbs::serve {

struct ServeConfig {
  std::string bind = "127.0.0.1";
  std::uint16_t udp_port = 0;     ///< 0 = ephemeral
  bool tcp = false;
  std::uint16_t tcp_port = 0;     ///< 0 = ephemeral
  std::uint16_t status_port = 0;  ///< control socket; 0 = ephemeral
  bool stamped = false;           ///< replay framing (see header comment)
  std::size_t queue_capacity = 65536;
  analysis::StreamingConfig streaming;
  analysis::WindowedPipelineConfig pipeline;
  std::string checkpoint_path;     ///< target of CHECKPOINT (and cadence saves)
  bool restore = false;            ///< load checkpoint_path before starting
  std::int64_t checkpoint_every_secs = 0;  ///< stream-time cadence; 0 = manual only
  std::string windows_out;         ///< append one summary block per closed window
  std::string ready_file;          ///< written once listening: "udp=P tcp=P status=P"
  std::string trace_out;           ///< TRACE <secs> writes Chrome trace JSON here
};

class ServeDaemon {
 public:
  ServeDaemon(ServeConfig config, const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
              const core::QuerierResolver& resolver);
  ~ServeDaemon();

  /// Binds every socket, restores the checkpoint when configured, then
  /// spawns the threads.  False (with `error` set) leaves the daemon
  /// stopped.
  bool start(std::string& error);

  /// Blocks until a SHUTDOWN command or request_stop() lands.
  void wait();

  /// Initiates shutdown from any thread: intake stops, the drive thread
  /// finishes queued work and exits WITHOUT flushing open windows (a
  /// checkpointed daemon must be resumable; use FLUSH first when final
  /// windows are wanted).
  void request_stop();

  std::uint16_t udp_port() const { return udp_.local_port(); }
  std::uint16_t tcp_port() const { return tcp_listener_.local_port(); }
  std::uint16_t status_port() const { return status_listener_.local_port(); }

  const analysis::StreamingWindowDriver* driver() const { return driver_.get(); }
  analysis::WindowedPipeline* pipeline() { return pipeline_.get(); }

 private:
  struct RawPacket {
    std::vector<std::uint8_t> bytes;
    std::int64_t wall_secs = 0;
    net::IPv4Addr source;
  };
  struct ControlRequest {
    std::string command;
    std::promise<std::string> reply;
  };

  void udp_loop();
  void tcp_loop();
  void serve_tcp_connection(net::TcpStream stream);
  void status_loop();
  void handle_http(net::TcpStream& stream, const std::string& request_line);
  std::future<std::string> submit_control(std::string command);
  void drive_loop();
  void process_packet(const RawPacket& packet);
  void service_control();
  std::string handle_control(const std::string& command);
  std::string stats_json() const;
  bool write_checkpoint(std::string& why);
  void drain_intake();
  void write_new_window_summaries();
  void finish_trace();

  ServeConfig config_;
  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  const core::QuerierResolver& resolver_;

  std::unique_ptr<analysis::WindowedPipeline> pipeline_;
  std::unique_ptr<analysis::StreamingWindowDriver> driver_;
  BoundedQueue<RawPacket> queue_;

  net::UdpSocket udp_;
  net::TcpListener tcp_listener_;
  net::TcpListener status_listener_;

  std::atomic<bool> stop_{false};
  std::atomic<int> tcp_active_{0};  ///< open intake connections (quiesce check)
  std::mutex control_mutex_;
  std::vector<std::unique_ptr<ControlRequest>> control_requests_;

  std::thread udp_thread_;
  std::thread tcp_thread_;
  std::thread status_thread_;
  std::thread drive_thread_;
  bool started_ = false;

  dns::CaptureStats capture_stats_;
  std::uint64_t summaries_written_ = 0;
  std::int64_t next_cadence_checkpoint_ = 0;
  // TRACE capture state; drive-thread only (handle_control runs there).
  bool trace_active_ = false;
  std::uint64_t trace_deadline_ns_ = 0;
};

}  // namespace dnsbs::serve
