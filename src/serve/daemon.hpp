// The dnsbs_serve daemon: live DNS backscatter intake over real sockets.
//
// Layout (one process, four threads):
//
//   udp thread    recvfrom() -> RawPacket -> try_push (drop + count when full)
//   tcp thread    accept(); length-prefixed frames -> blocking push (lossless)
//   status thread accept(); line commands (STATS/HISTORY/TRACE/CHECKPOINT/
//                 FLUSH/SHUTDOWN/PING) forwarded to the drive thread, reply
//                 written back.  The same socket answers HTTP/1.1 GETs
//                 (/metrics, /healthz, /windows): the first line of a
//                 connection picks the protocol.
//   drive thread  pops packet batches, decodes via dns::record_from_packet,
//                 offers records to the StreamingWindowDriver (which owns
//                 window open/close against the WindowedPipeline), services
//                 control requests, checkpoints, starts/stops timed trace
//                 captures (TRACE <secs>)
//
// Plus a shared util::JobSystem (the async window pipeline) with three
// serial queues on one small worker pool:
//
//   close   window seal -> feature extraction, retrain gate, classify,
//           telemetry (StreamingWindowDriver, --async-windows on)
//   train   the pipeline's ordered retrain+classify chain
//   export  --windows-out summary appends (rendered on the closing
//           thread, re-sequenced by absolute window index) and TRACE
//           dump serialization — file I/O never blocks intake
//
// Determinism: everything that feeds deterministic metric series — packet
// decode, dedup/aggregate ingest, window close — runs either on the single
// drive thread in arrival order or on a serial queue in window order, so a
// replayed stream produces byte-identical windows in both --async-windows
// modes (see analysis/streaming.hpp for the attribution argument).
// Socket-side tallies (datagrams seen, queue drops, frames) and the
// dnsbs.serve.jobs.* queue gauges are sched-flagged: they depend on kernel
// timing, not on the stream.  Control verbs that read shared state (STATS,
// HISTORY, /metrics, FLUSH, CHECKPOINT) quiesce the queues first, so their
// replies — and any checkpoint taken mid-close — are slot-exact.
//
// Timestamps: with `stamped` framing each payload carries its own stream
// time and querier ([8B LE seconds][4B LE querier IPv4][DNS message]),
// making replays self-clocking and loss-free over TCP — the mode the
// checkpoint/restart byte-identity contract is verified in.  Without it,
// the record time is the wall clock at receipt and the querier is the
// datagram's source address (live capture mode; inherently not
// replay-deterministic).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/streaming.hpp"
#include "dns/capture.hpp"
#include "net/socket.hpp"
#include "serve/intake.hpp"

namespace dnsbs::serve {

/// Renders one closed window as the --windows-out text block ("window N
/// ... end\n"): features as hexfloat rows, classes sorted by address, the
/// deterministic view of the window's metrics delta.  Pure function of the
/// result + observation, so sync and async modes share the exact bytes.
std::string render_window_summary(const analysis::WindowResult& result,
                                  const labeling::WindowObservation& observation);

/// Re-sequences rendered summary blocks by absolute window index so the
/// --windows-out file is always in window order.  The close queue is
/// FIFO-serial, so blocks normally arrive already ordered — this class
/// *encodes* that invariant (and would ride out a future concurrent close
/// path): push() buffers out-of-order blocks and releases the contiguous
/// run starting at the next expected index.  Not thread-safe; the daemon
/// guards it with a mutex.
class WindowSummarySequencer {
 public:
  /// Discards buffered blocks and sets the next expected index (used at
  /// checkpoint restore: summaries for windows [0, next) already exist).
  void reset(std::uint64_t next_index) {
    next_ = next_index;
    pending_.clear();
  }
  /// Offers one block; returns the blocks now contiguous from the expected
  /// index, in window order (often just this block; empty when a gap
  /// precedes it).  A block older than the expected index is dropped — its
  /// window was already exported (checkpoint replay overlap).
  std::vector<std::string> push(std::uint64_t index, std::string block) {
    std::vector<std::string> ready;
    if (index < next_) return ready;
    pending_.emplace(index, std::move(block));
    for (auto it = pending_.begin(); it != pending_.end() && it->first == next_;
         it = pending_.erase(it), ++next_) {
      ready.push_back(std::move(it->second));
    }
    return ready;
  }
  std::uint64_t next_index() const noexcept { return next_; }
  std::size_t buffered() const noexcept { return pending_.size(); }

 private:
  std::uint64_t next_ = 0;
  std::map<std::uint64_t, std::string> pending_;
};

struct ServeConfig {
  std::string bind = "127.0.0.1";
  std::uint16_t udp_port = 0;     ///< 0 = ephemeral
  bool tcp = false;
  std::uint16_t tcp_port = 0;     ///< 0 = ephemeral
  std::uint16_t status_port = 0;  ///< control socket; 0 = ephemeral
  bool stamped = false;           ///< replay framing (see header comment)
  std::size_t queue_capacity = 65536;
  /// Worker threads of the shared job system (close/train/export queues).
  /// Output is byte-identical for any value — the queues are serial; more
  /// workers only add queue-to-queue overlap.
  std::size_t job_threads = 2;
  analysis::StreamingConfig streaming;
  analysis::WindowedPipelineConfig pipeline;
  std::string checkpoint_path;     ///< target of CHECKPOINT (and cadence saves)
  bool restore = false;            ///< load checkpoint_path before starting
  std::int64_t checkpoint_every_secs = 0;  ///< stream-time cadence; 0 = manual only
  std::string windows_out;         ///< append one summary block per closed window
  std::string ready_file;          ///< written once listening: "udp=P tcp=P status=P"
  std::string trace_out;           ///< TRACE <secs> writes Chrome trace JSON here
};

class ServeDaemon {
 public:
  ServeDaemon(ServeConfig config, const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
              const core::QuerierResolver& resolver);
  ~ServeDaemon();

  /// Binds every socket, restores the checkpoint when configured, then
  /// spawns the threads.  False (with `error` set) leaves the daemon
  /// stopped.
  bool start(std::string& error);

  /// Blocks until a SHUTDOWN command or request_stop() lands.
  void wait();

  /// Initiates shutdown from any thread: intake stops, the drive thread
  /// finishes queued work and exits WITHOUT flushing open windows (a
  /// checkpointed daemon must be resumable; use FLUSH first when final
  /// windows are wanted).
  void request_stop();

  std::uint16_t udp_port() const { return udp_.local_port(); }
  std::uint16_t tcp_port() const { return tcp_listener_.local_port(); }
  std::uint16_t status_port() const { return status_listener_.local_port(); }

  const analysis::StreamingWindowDriver* driver() const { return driver_.get(); }
  analysis::WindowedPipeline* pipeline() { return pipeline_.get(); }

 private:
  struct RawPacket {
    std::vector<std::uint8_t> bytes;
    std::int64_t wall_secs = 0;
    net::IPv4Addr source;
  };
  struct ControlRequest {
    std::string command;
    std::promise<std::string> reply;
  };

  void udp_loop();
  void tcp_loop();
  void serve_tcp_connection(net::TcpStream stream);
  void status_loop();
  void handle_http(net::TcpStream& stream, const std::string& request_line);
  std::future<std::string> submit_control(std::string command);
  void drive_loop();
  void process_packet(const RawPacket& packet);
  void service_control();
  std::string handle_control(const std::string& command);
  std::string stats_json() const;
  bool write_checkpoint(std::string& why);
  void drain_intake();
  /// Driver close callback: renders the summary block (on the closing
  /// thread — a job worker in async mode), sequences it, and appends to
  /// --windows-out (inline in sync mode, via the export queue in async).
  void on_window_close(const analysis::WindowResult& result,
                       const labeling::WindowObservation& observation);
  void append_summaries(const std::vector<std::string>& blocks);
  /// Barrier: close + train + export work all landed (STATS/HISTORY/FLUSH/
  /// CHECKPOINT and loop exit run behind it).
  void quiesce_pipeline();
  void finish_trace();

  ServeConfig config_;
  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  const core::QuerierResolver& resolver_;

  /// One worker pool for the whole async window pipeline; the pipeline's
  /// "train" queue, the driver's "close" queue and the daemon's "export"
  /// queue all live here (metric prefix dnsbs.serve.jobs).  Declared
  /// before pipeline_/driver_ so their destructors (which drain their
  /// queues) run first.
  std::shared_ptr<util::JobSystem> jobs_;
  util::JobSystem::QueueId export_queue_ = 0;
  std::unique_ptr<analysis::WindowedPipeline> pipeline_;
  std::unique_ptr<analysis::StreamingWindowDriver> driver_;
  BoundedQueue<RawPacket> queue_;

  net::UdpSocket udp_;
  net::TcpListener tcp_listener_;
  net::TcpListener status_listener_;

  std::atomic<bool> stop_{false};
  std::atomic<int> tcp_active_{0};  ///< open intake connections (quiesce check)
  std::mutex control_mutex_;
  std::vector<std::unique_ptr<ControlRequest>> control_requests_;

  std::thread udp_thread_;
  std::thread tcp_thread_;
  std::thread status_thread_;
  std::thread drive_thread_;
  bool started_ = false;

  dns::CaptureStats capture_stats_;
  /// Summary ordering state; on_window_close may run on a job worker, so
  /// access goes through summary_mutex_.
  std::mutex summary_mutex_;
  WindowSummarySequencer sequencer_;
  std::int64_t next_cadence_checkpoint_ = 0;
  // TRACE capture state; drive-thread only (handle_control runs there).
  bool trace_active_ = false;
  std::uint64_t trace_deadline_ns_ = 0;
};

}  // namespace dnsbs::serve
