// Bounded MPSC-ish handoff between socket threads and the drive thread.
//
// Backpressure policy is per-transport, chosen by the caller: UDP intake
// uses try_push (a full queue drops the datagram and counts it — exactly
// what the kernel would do anyway), TCP intake uses the blocking push so
// the peer's send window stalls instead (lossless replay).  A closed
// queue rejects producers and lets the consumer drain what's left.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace dnsbs::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Non-blocking: false when full or closed (caller counts the drop).
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking: waits for space; false only when the queue closes.
  bool push(T&& item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Moves up to `max_items` into `out` (appended), waiting up to
  /// `timeout_ms` for the first one.  Returns the number appended; 0 on
  /// timeout or on a closed-and-drained queue.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items, int timeout_ms) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) {
      not_empty_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                          [this] { return closed_ || !items_.empty(); });
    }
    std::size_t moved = 0;
    while (moved < max_items && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++moved;
    }
    if (moved > 0) not_full_.notify_all();
    return moved;
  }

  /// Rejects future producers and wakes everyone; consumers can still
  /// drain queued items.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dnsbs::serve
