// Recursive-resolver simulation: the caching layer between queriers and
// authorities (paper §II "At the Authority", §IV-D).
//
// Each distinct querier address runs (or is) a recursive resolver with its
// own cache.  A reverse lookup walks the delegation chain of the
// in-addr.arpa tree:
//
//   PTR cached?                -> no query leaves the resolver
//   /24-zone NS cached?        -> query goes straight to the final
//                                 authority; national server sees nothing
//   /8-zone NS cached?         -> the root never hears about it
//
// Upper-zone NS records are shared across all originators in the same /8,
// and in the real Internet they are kept warm by background traffic we do
// not simulate; a busyness-dependent warm probability stands in for that
// background (documented in DESIGN.md).  The /24-zone and PTR caches are
// simulated exactly, TTL by TTL.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "dns/cache.hpp"
#include "dns/reverse.hpp"
#include "sim/naming.hpp"
#include "util/rng.hpp"

namespace dnsbs::sim {

/// How aggressively a resolver's upper-zone cache is kept warm by traffic
/// outside our simulation.
enum class ResolverBusyness : std::uint8_t {
  kBusy,   ///< large ISP / public resolver: upper zones essentially always warm
  kSmall,  ///< site resolver: usually warm
  kSelf,   ///< a host doing its own recursion: frequently cold
};

struct ResolverSimConfig {
  std::uint32_t ns_ttl_slash8 = 172800;  ///< 2 days (delegation TTL near the root)
  std::uint32_t ns_ttl_slash24 = 86400;  ///< 1 day (final-zone delegation TTL)
  std::uint32_t servfail_ttl = 300;      ///< unreachable-authority retry damping
  /// Optional per-address PTR-TTL override; lets scenarios give CDN and
  /// ad-tracker addresses the short cache lifetimes their operators use
  /// (paper §VI-B: trackers "use DNS records with short cache lifetimes").
  std::function<std::optional<std::uint32_t>(net::IPv4Addr)> ptr_ttl_hint;
  /// P(/8-zone NS already warm) on a cache miss, by busyness.  Real
  /// resolvers are warmer still; these values compress the hierarchy's
  /// attenuation so root-level footprints stay measurable at simulation
  /// scale while preserving final >> national >> root ordering.
  double warm8_busy = 0.97;
  double warm8_small = 0.85;
  double warm8_self = 0.45;
  /// Bound on tracked resolvers (0 = unbounded); protects long runs.
  std::size_t max_cache_entries_per_resolver = 0;
  /// Fraction of queriers that ignore DNS TTLs and re-query every trigger
  /// (paper §III-C: "queriers that do not follow DNS timeout rules" are
  /// why the 30 s dedup window exists).
  double ttl_violator_fraction = 0.12;
  /// Fraction of resolvers deploying QNAME minimization (RFC 7816).  The
  /// paper's §VII anticipates this countermeasure: minimizing resolvers
  /// only reveal the zone labels to upper authorities, so the originator
  /// is not recoverable above the final authority.
  double qname_min_fraction = 0.0;
};

/// What one lookup did, as seen by each level of the hierarchy.
struct ResolveOutcome {
  bool served_from_cache = false;  ///< PTR/negative hit: invisible everywhere
  bool reached_final = false;      ///< final authority answered (always true on miss)
  bool reached_national = false;   ///< /24-zone delegation had to be fetched
  bool reached_root = false;       ///< /8-zone delegation had to be fetched
  /// QNAME minimization: upper authorities saw only zone labels, so they
  /// cannot attribute the query to an originator (the full QNAME is still
  /// visible at the final authority).
  bool qname_minimized = false;
  dns::RCode rcode = dns::RCode::kNoError;
};

class ResolverSim {
 public:
  ResolverSim(const NamingModel& naming, ResolverSimConfig config, std::uint64_t seed);

  /// Executes one reverse lookup of `originator` by resolver `querier` at
  /// virtual time `now`.
  ResolveOutcome resolve(net::IPv4Addr querier, net::IPv4Addr originator,
                         util::SimTime now);

  std::size_t resolver_count() const noexcept { return caches_.size(); }

  /// Aggregated cache statistics across all resolvers.
  dns::CacheSim::Stats total_stats() const;

  ResolverBusyness busyness_of(net::IPv4Addr querier) const;

 private:
  const NamingModel& naming_;
  ResolverSimConfig config_;
  util::Rng rng_;
  std::unordered_map<net::IPv4Addr, dns::CacheSim> caches_;
};

}  // namespace dnsbs::sim
