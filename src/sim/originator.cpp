#include "sim/originator.hpp"

#include <algorithm>
#include <iterator>

namespace dnsbs::sim {

namespace {

/// Class behaviour defaults: traffic kind, target strategy, base touch
/// rate (per hour; drawn Pareto-heavy per originator), diurnality, and
/// where such originators typically live.
struct ClassDefaults {
  TrafficKind kind;
  TargetStrategy strategy;
  double base_rate;       ///< Pareto scale of touches/hour
  double rate_alpha;      ///< Pareto shape (smaller = heavier tail)
  double rate_cap;        ///< per-hour ceiling to bound event budgets
  double diurnal;         ///< diurnal strength
  double regional_bias;   ///< fraction of region-local targets
  SiteType home;          ///< site type the originator's own address is in
};

const ClassDefaults& defaults_for(core::AppClass cls) noexcept {
  // Rates are scenario-scaled; ratios between classes matter more than
  // absolute values.  Spam and scan dominate counts (paper Table V),
  // ad-trackers are few but huge (Fig. 10a), crawlers are many but small
  // per-address (paper §VI-B).
  static const ClassDefaults kDefaults[core::kAppClassCount] = {
      // ad-tracker: few origins, giant footprint, user-driven diurnal
      {TrafficKind::kWebFetch, TargetStrategy::kEndUsers, 140.0, 2.2, 900, 0.7, 0.25,
       SiteType::kHosting},
      // cdn: regional clients, home-heavy queriers
      {TrafficKind::kWebFetch, TargetStrategy::kEndUsers, 90.0, 1.8, 700, 0.6, 0.85,
       SiteType::kHosting},
      // cloud: front-ends, moderately large
      {TrafficKind::kWebFetch, TargetStrategy::kEndUsers, 55.0, 1.9, 500, 0.5, 0.35,
       SiteType::kHosting},
      // crawler: many parallel addresses, each small
      {TrafficKind::kCrawlVisit, TargetStrategy::kWebServers, 12.0, 2.5, 90, 0.2, 0.0,
       SiteType::kHosting},
      // dns: large resolvers/servers talking to nameservers
      {TrafficKind::kDnsTraffic, TargetStrategy::kDnsServers, 30.0, 2.0, 250, 0.3, 0.2,
       SiteType::kHosting},
      // mail: mailing lists, bursty business-hours pattern, home-country
      // heavy (the paper's exemplar list is Japanese)
      {TrafficKind::kSmtp, TargetStrategy::kMailServers, 18.0, 1.8, 250, 0.8, 0.80,
       SiteType::kCorporate},
      // ntp: steady, small-but-wide, clients of every kind
      {TrafficKind::kNtpTraffic, TargetStrategy::kAllHosts, 22.0, 2.2, 160, 0.1, 0.3,
       SiteType::kHosting},
      // p2p: residential peers probing each other (mis-behaving clients
      // also hit random empty space — modelled as scan-like probes)
      {TrafficKind::kP2pTraffic, TargetStrategy::kPeers, 16.0, 1.9, 150, 0.4, 0.4,
       SiteType::kResidential},
      // push: persistent mobile connections (TCP 5223-style)
      {TrafficKind::kWebFetch, TargetStrategy::kMobileUsers, 40.0, 2.0, 300, 0.5, 0.3,
       SiteType::kHosting},
      // scan: address-space walkers, flat in time, heavy tail
      {TrafficKind::kScanProbe, TargetStrategy::kRandomAddress, 70.0, 1.5, 1500, 0.05,
       0.0, SiteType::kHosting},
      // spam: the most numerous; compromised hosts everywhere.  Campaigns
      // are fairly country-concentrated (language-targeted), which is why
      // spammers top national views but fade at the roots (paper Tables
      // VII vs VIII).
      {TrafficKind::kSmtp, TargetStrategy::kMailServers, 25.0, 1.6, 500, 0.25, 0.45,
       SiteType::kResidential},
      // update: vendor services, regional, few
      {TrafficKind::kWebFetch, TargetStrategy::kEndUsers, 30.0, 2.0, 250, 0.6, 0.8,
       SiteType::kHosting},
  };
  return kDefaults[static_cast<std::size_t>(cls)];
}

std::uint16_t scan_port(util::Rng& rng) {
  // The long tail of scanned ports, ssh-heavy as in Figure 13.
  // Sentinels: 1 = ICMP sweep, 0 = multi-port scan.
  static constexpr std::uint16_t kPorts[] = {22, 22, 22, 80, 80, 443,
                                             23, 3389, 1, 1, 0};
  return kPorts[rng.below(std::size(kPorts))];
}

netdb::Region region_of_country(netdb::CountryCode cc) {
  for (const auto& info : netdb::world_countries()) {
    if (info.code == cc) return info.region;
  }
  return netdb::Region::kNorthAmerica;
}

}  // namespace

double weekly_rate_drift(const OriginatorSpec& spec, std::int64_t week) noexcept {
  std::uint64_t z = (static_cast<std::uint64_t>(spec.address.value()) << 20) ^
                    static_cast<std::uint64_t>(week + 7);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
  // exp of a symmetric triangle-ish variate: multiplicative drift.
  return std::exp(0.5 * (2.0 * u - 1.0));
}

OriginatorSpec make_spec(core::AppClass cls, const AddressPlan& plan, util::Rng& rng,
                         double rate_scale) {
  const ClassDefaults& d = defaults_for(cls);
  OriginatorSpec spec;
  spec.cls = cls;
  spec.kind = d.kind;
  spec.strategy = d.strategy;
  // Compromised-host classes originate from a mix of site types; services
  // come from their natural home.
  if (cls == core::AppClass::kSpam || cls == core::AppClass::kScan) {
    const double r = rng.uniform();
    const SiteType t = r < 0.45   ? SiteType::kResidential
                       : r < 0.75 ? SiteType::kHosting
                       : r < 0.9  ? SiteType::kCorporate
                                  : SiteType::kMobile;
    spec.address = plan.random_host(rng, t);
  } else {
    spec.address = plan.random_host(rng, d.home);
  }
  spec.touches_per_hour =
      std::min(d.rate_cap, rng.pareto(d.base_rate * rate_scale, d.rate_alpha));
  spec.diurnal_strength = d.diurnal;
  spec.diurnal_peak_hour = rng.uniform(9.0, 15.0);
  spec.regional_bias = d.regional_bias;
  if (const Site* site = plan.site_of(spec.address)) spec.home_region = site->region;
  if (cls == core::AppClass::kScan) spec.port = scan_port(rng);
  return spec;
}

std::vector<OriginatorSpec> make_population(const AddressPlan& plan,
                                            const OriginatorPopulationConfig& config,
                                            util::Rng& rng) {
  std::vector<OriginatorSpec> population;
  const auto focus_sites = plan.sites_in_country(config.focus_country);
  for (const core::AppClass cls : core::all_app_classes()) {
    const ClassProfile& profile = config.classes[static_cast<std::size_t>(cls)];
    for (std::size_t i = 0; i < profile.count; ++i) {
      OriginatorSpec spec = make_spec(cls, plan, rng, profile.rate_scale);
      // Re-home some originators into the focus country so a national
      // authority has something to see.
      if (!focus_sites.empty() && rng.chance(profile.in_country_fraction)) {
        const Site& site = plan.sites()[focus_sites[rng.below(focus_sites.size())]];
        spec.address = site.prefix.at(1 + rng.below(254));
        spec.home_region = site.region;
      }
      population.push_back(spec);

      // Coordinated scanning teams: siblings in the same /24, same port
      // (paper §VI-B found 39 single-class blocks with 4+ originators).
      if (cls == core::AppClass::kScan && rng.chance(kScanTeamProbability)) {
        const net::Prefix block(spec.address, 24);
        const std::size_t team = 3 + rng.below(6);
        for (std::size_t member = 0; member < team; ++member) {
          OriginatorSpec sibling = spec;
          sibling.address = block.at(1 + rng.below(254));
          if (sibling.address == spec.address) continue;
          sibling.touches_per_hour =
              spec.touches_per_hour * rng.uniform(0.6, 1.4);
          population.push_back(sibling);
        }
      }
    }
  }
  return population;
}

TargetPicker::TargetPicker(const AddressPlan& plan, const QuerierPopulation& qpop)
    : plan_(plan),
      qpop_(qpop),
      mail_zipf_(std::max<std::size_t>(1, qpop.mail_servers().size()), 0.9),
      web_zipf_(std::max<std::size_t>(1, qpop.web_servers().size()), 1.0) {
  for (std::size_t i = 0; i < plan.sites().size(); ++i) {
    const Site& site = plan.sites()[i];
    if (site.type == SiteType::kResidential || site.type == SiteType::kMobile) {
      user_sites_.push_back(i);
      user_sites_by_region_[static_cast<std::size_t>(site.region)].push_back(i);
      user_sites_by_country_[site.country].push_back(i);
      if (site.type == SiteType::kMobile) mobile_sites_.push_back(i);
    }
  }
  for (const net::IPv4Addr server : qpop.mail_servers()) {
    if (const Site* site = plan.site_of(server)) {
      mail_servers_by_country_[site->country].push_back(server);
    }
  }
}

net::IPv4Addr TargetPicker::pick_end_user(const OriginatorSpec& spec, bool use_region,
                                          util::Rng& rng) const {
  // Region-biased draws concentrate further at the country level: a
  // Japan-based CDN node mostly serves Japanese clients (the low global
  // entropy of the paper's cdn/mail case studies).
  const std::vector<std::size_t>* pool = &user_sites_;
  if (use_region) {
    const Site* home = plan_.site_of(spec.address);
    if (home && rng.chance(0.7)) {
      const auto it = user_sites_by_country_.find(home->country);
      if (it != user_sites_by_country_.end() && !it->second.empty()) pool = &it->second;
    }
    if (pool == &user_sites_) {
      const auto& regional =
          user_sites_by_region_[static_cast<std::size_t>(spec.home_region)];
      if (!regional.empty()) pool = &regional;
    }
  }
  if (pool->empty()) return plan_.random_host(rng);
  const Site& site = plan_.sites()[(*pool)[rng.below(pool->size())]];
  return site.prefix.at(3 + rng.below(252));
}

net::IPv4Addr TargetPicker::pick(const OriginatorSpec& spec, util::SimTime now,
                                 util::Rng& rng) const {
  const std::int64_t week = now.week_index();
  // Regional focus itself drifts a little week to week.
  const double drift = weekly_rate_drift(spec, week + 1000);
  const double bias = std::clamp(spec.regional_bias * drift, 0.0, 1.0);
  const bool regional = rng.chance(bias);
  switch (spec.strategy) {
    case TargetStrategy::kRandomAddress: {
      // Scanners walk the whole address space.  Our synthetic world is a
      // compressed Internet: allocated /24 sites stand in for the routed,
      // occupied space, the darknet blocks for monitored dark space, and
      // the remainder for probes that hit nothing.  The occupied fraction
      // mirrors real responsive-space density closely enough that scan
      // backscatter and darknet evidence stay correlated (DESIGN.md).
      const double u = rng.uniform();
      if (u < 0.42) return plan_.random_host(rng);
      if (u < 0.45) {
        const auto& dark = darknet_prefixes();
        const net::Prefix& p = dark[rng.below(dark.size())];
        return p.at(rng.below(p.size()));
      }
      return net::IPv4Addr(static_cast<std::uint32_t>(rng.next()));
    }
    case TargetStrategy::kMailServers: {
      // Regional mailing lists / spam campaigns concentrate on the home
      // country's mail servers; the rest of the traffic goes global.
      if (regional) {
        if (const Site* home = plan_.site_of(spec.address)) {
          const auto it = mail_servers_by_country_.find(home->country);
          if (it != mail_servers_by_country_.end() && !it->second.empty()) {
            return it->second[rng.below(it->second.size())];
          }
        }
      }
      const auto& servers = qpop_.mail_servers();
      if (servers.empty()) return plan_.random_host(rng);
      // Campaign rotation: which servers sit at the head of the Zipf
      // ranking shifts per originator per week, so the querier set (and
      // with it the feature vector) evolves even for stable senders.
      const std::size_t rotation = static_cast<std::size_t>(
          weekly_rate_drift(spec, week + 2000) * 1e6);
      return servers[(mail_zipf_.sample(rng) + rotation) % servers.size()];
    }
    case TargetStrategy::kEndUsers:
      return pick_end_user(spec, regional, rng);
    case TargetStrategy::kMobileUsers: {
      if (mobile_sites_.empty()) return pick_end_user(spec, regional, rng);
      const Site& site = plan_.sites()[mobile_sites_[rng.below(mobile_sites_.size())]];
      return site.prefix.at(3 + rng.below(252));
    }
    case TargetStrategy::kAllHosts:
      return plan_.random_host(rng);
    case TargetStrategy::kWebServers: {
      const auto& servers = qpop_.web_servers();
      if (servers.empty()) return plan_.random_host(rng);
      return servers[web_zipf_.sample(rng) % servers.size()];
    }
    case TargetStrategy::kDnsServers: {
      const auto& servers = qpop_.dns_servers();
      if (servers.empty()) return plan_.random_host(rng);
      return servers[rng.below(servers.size())];
    }
    case TargetStrategy::kPeers:
      // Mis-behaving P2P clients probe stale or garbage addresses (paper
      // §IV-C observed misclassified p2p hitting darknets); a slice of
      // peer traffic goes to random space, darknet included.
      if (rng.chance(0.10)) {
        const double u = rng.uniform();
        if (u < 0.30) return plan_.random_host(rng);
        if (u < 0.34) {
          const auto& dark = darknet_prefixes();
          const net::Prefix& p = dark[rng.below(dark.size())];
          return p.at(rng.below(p.size()));
        }
        return net::IPv4Addr(static_cast<std::uint32_t>(rng.next()));
      }
      return pick_end_user(spec, regional, rng);
  }
  return plan_.random_host(rng);
}

}  // namespace dnsbs::sim
