#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace dnsbs::sim {

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)) {
  plan_ = std::make_unique<AddressPlan>(
      AddressPlan::generate(config_.plan, config_.seed));
  naming_ = std::make_unique<NamingModel>(*plan_, config_.naming, config_.seed);
  queriers_ =
      std::make_unique<QuerierPopulation>(*naming_, config_.queriers, config_.seed);

  util::Rng rng = util::Rng::stream(config_.seed, 0x5ce0);
  population_ = make_population(*plan_, config_.originators, rng);
  if (config_.churn_enabled) {
    config_.churn.horizon = config_.duration;
    population_ = apply_churn(std::move(population_), config_.churn, *plan_,
                              config_.events, rng);
  }
  for (const OriginatorSpec& spec : population_) {
    const auto [it, inserted] = truth_.try_emplace(spec.address, spec.cls);
    if (!inserted && it->second != spec.cls) {
      util::log_debug("scenario",
                      util::format("address %s reused across classes",
                                   spec.address.to_string().c_str()));
      it->second = spec.cls;
    }
  }

  authorities_.reserve(config_.authorities.size());
  for (const AuthorityConfig& ac : config_.authorities) authorities_.emplace_back(ac);

  // Short-TTL operators: CDN selection and ad tracking rely on low DNS
  // cache lifetimes, which is what makes those classes' query rates high
  // per querier (paper §VI-B).  The hint consults the known population.
  ResolverSimConfig resolver_config = config_.resolver;
  resolver_config.ptr_ttl_hint =
      [this](net::IPv4Addr addr) -> std::optional<std::uint32_t> {
    const auto it = truth_.find(addr);
    if (it == truth_.end()) return std::nullopt;
    switch (it->second) {
      case core::AppClass::kAdTracker: return 60;
      case core::AppClass::kCdn: return 120;
      case core::AppClass::kCloud: return 300;
      default: return std::nullopt;
    }
  };

  engine_ = std::make_unique<TrafficEngine>(*plan_, *naming_, *queriers_,
                                            resolver_config, config_.seed);
  for (Authority& a : authorities_) engine_->add_authority(&a);
}

void Scenario::run_window(util::SimTime t0, util::SimTime t1) {
  engine_->run(population_, t0, t1);
}

std::vector<const OriginatorSpec*> Scenario::active_in(util::SimTime t0,
                                                       util::SimTime t1) const {
  std::vector<const OriginatorSpec*> out;
  for (const OriginatorSpec& spec : population_) {
    if (spec.start < t1 && spec.end > t0) out.push_back(&spec);
  }
  return out;
}

namespace {

std::size_t scaled(std::size_t n, double scale) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(n * scale)));
}

/// Class counts shaped like the paper's Table V mixes: spam most numerous,
/// then scan/p2p/mail, with a few big infrastructure services.
void set_counts(OriginatorPopulationConfig& oc, double scale, bool national) {
  using core::AppClass;
  const auto set = [&oc, scale](AppClass c, std::size_t count, double rate_scale,
                                double in_country) {
    auto& p = oc.classes[static_cast<std::size_t>(c)];
    p.count = scaled(count, scale);
    p.rate_scale = rate_scale;
    p.in_country_fraction = in_country;
  };
  const double home = national ? 0.85 : 0.0;
  set(AppClass::kAdTracker, 16, 1.0, home);
  set(AppClass::kCdn, 40, 1.0, national ? 0.4 : 0.0);  // CDNs mostly use foreign space
  set(AppClass::kCloud, 24, 1.0, home * 0.6);
  set(AppClass::kCrawler, 60, 1.0, home * 0.5);
  set(AppClass::kDns, 40, 1.0, home);
  set(AppClass::kMail, 130, 1.0, home);
  set(AppClass::kNtp, 20, 1.0, home);
  set(AppClass::kP2p, 160, 1.0, home);
  set(AppClass::kPush, 24, 1.0, home * 0.6);
  set(AppClass::kScan, 120, 1.0, home);
  set(AppClass::kSpam, 420, 1.0, home);
  set(AppClass::kUpdate, 6, 1.0, home);
}

ScenarioConfig base_config(std::uint64_t seed, double scale) {
  ScenarioConfig sc;
  sc.seed = seed;
  sc.plan.sites = scaled(16000, std::sqrt(scale));  // world shrinks slower than traffic
  sc.plan.total_slash8 = 96;
  return sc;
}

}  // namespace

AuthorityConfig b_root_authority() {
  AuthorityConfig ac;
  ac.name = "B-Root";
  ac.level = AuthorityLevel::kRoot;
  // Single US site: strongly preferred by North-American resolvers, but
  // root selection is latency-noisy and every region sends B a share.
  ac.root_selection = {/*NA*/ 0.30, /*SA*/ 0.15, /*EU*/ 0.10, /*Asia*/ 0.08,
                       /*Oceania*/ 0.10, /*Africa*/ 0.08};
  return ac;
}

AuthorityConfig m_root_authority(std::uint32_t sample_1_in) {
  AuthorityConfig ac;
  ac.name = "M-Root";
  ac.level = AuthorityLevel::kRoot;
  // Anycast in Asia, North America, Europe: strong in Asia.
  ac.root_selection = {/*NA*/ 0.12, /*SA*/ 0.06, /*EU*/ 0.18, /*Asia*/ 0.34,
                       /*Oceania*/ 0.10, /*Africa*/ 0.06};
  ac.sample_1_in = sample_1_in;
  return ac;
}

AuthorityConfig national_authority(netdb::CountryCode cc) {
  AuthorityConfig ac;
  ac.name = "ccTLD-" + cc.to_string();
  ac.level = AuthorityLevel::kNational;
  ac.country = cc;
  return ac;
}

ScenarioConfig jp_ditl_config(std::uint64_t seed, double scale) {
  ScenarioConfig sc = base_config(seed, scale);
  sc.name = "JP-ditl";
  sc.duration = util::SimTime::hours(50);
  sc.originators.focus_country = netdb::CountryCode('j', 'p');
  set_counts(sc.originators, scale, /*national=*/true);
  sc.authorities.push_back(national_authority(netdb::CountryCode('j', 'p')));
  // Keep the roots around too: comparing views is a first-class use case.
  sc.authorities.push_back(b_root_authority());
  sc.authorities.push_back(m_root_authority());
  return sc;
}

ScenarioConfig b_post_ditl_config(std::uint64_t seed, double scale) {
  ScenarioConfig sc = base_config(seed, scale);
  sc.name = "B-post-ditl";
  sc.duration = util::SimTime::hours(36);
  set_counts(sc.originators, scale * 1.6, /*national=*/false);  // global population
  sc.authorities.push_back(b_root_authority());
  return sc;
}

ScenarioConfig m_ditl_config(std::uint64_t seed, double scale) {
  ScenarioConfig sc = base_config(seed, scale);
  sc.name = "M-ditl";
  sc.duration = util::SimTime::hours(50);
  set_counts(sc.originators, scale * 1.6, /*national=*/false);
  sc.authorities.push_back(m_root_authority());
  return sc;
}

ScenarioConfig m_sampled_config(std::uint64_t seed, std::size_t weeks, double scale) {
  ScenarioConfig sc = base_config(seed, scale);
  sc.name = "M-sampled";
  sc.duration = util::SimTime::weeks(static_cast<std::int64_t>(weeks));
  set_counts(sc.originators, scale * 1.6, /*national=*/false);
  sc.authorities.push_back(m_root_authority(/*sample_1_in=*/10));
  // Long-horizon root observation with 1:10 sampling needs the hierarchy
  // attenuation compressed further or weekly footprints fall below the
  // analyzability floor (DESIGN.md discusses the scaling).
  sc.resolver.warm8_busy = 0.50;
  sc.resolver.warm8_small = 0.30;
  sc.resolver.warm8_self = 0.10;
  sc.churn_enabled = true;
  // A Heartbleed-like disclosure two months in (Fig. 11's April bump).
  VulnerabilityEvent heartbleed;
  heartbleed.start = util::SimTime::weeks(7);
  heartbleed.ramp_duration = util::SimTime::days(10);
  heartbleed.extra_scanners = scaled(300, scale);
  heartbleed.port = 443;
  if (sc.duration > heartbleed.start) sc.events.push_back(heartbleed);
  return sc;
}

ScenarioConfig b_multi_year_config(std::uint64_t seed, std::size_t weeks, double scale) {
  ScenarioConfig sc = base_config(seed, scale);
  sc.name = "B-multi-year";
  sc.duration = util::SimTime::weeks(static_cast<std::int64_t>(weeks));
  set_counts(sc.originators, scale * 1.6, /*national=*/false);
  sc.authorities.push_back(b_root_authority());
  sc.churn_enabled = true;
  return sc;
}

}  // namespace dnsbs::sim
