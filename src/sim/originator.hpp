// Originator behaviour models: the network-wide activities the sensor is
// built to detect (paper §III-D's twelve application classes).
//
// Every originator is a single IP address with a class-specific way of
// choosing targets (random addresses for scanners, mail servers for spam,
// end users for CDNs, ...), a heavy-tailed activity rate, a diurnality,
// and an activity window (for the churn studies of §V).  The traffic
// engine turns these specs into timed target touches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/taxonomy.hpp"
#include "sim/querier_population.hpp"
#include "util/time.hpp"

namespace dnsbs::sim {

/// How an originator picks its targets.
enum class TargetStrategy : std::uint8_t {
  kRandomAddress,  ///< uniform over allocated space (scanners)
  kMailServers,    ///< Zipf over the mail-server population (mail, spam)
  kEndUsers,       ///< residential/mobile hosts (ad-tracker, cdn, cloud, update)
  kMobileUsers,    ///< mobile pools only (push notification services)
  kAllHosts,       ///< any allocated host (ntp serves clients of every kind)
  kWebServers,     ///< web servers (crawlers)
  kDnsServers,     ///< nameservers (class dns)
  kPeers,          ///< residential peers (p2p)
};

struct OriginatorSpec {
  net::IPv4Addr address;
  core::AppClass cls = core::AppClass::kScan;
  TrafficKind kind = TrafficKind::kScanProbe;
  TargetStrategy strategy = TargetStrategy::kRandomAddress;
  double touches_per_hour = 10.0;
  double diurnal_strength = 0.0;   ///< 0 flat .. 1 strongly diurnal
  double diurnal_peak_hour = 12.0; ///< local peak, virtual hours
  /// Fraction of targets drawn from the originator's home region (CDN
  /// selection, regional mailing lists); the rest are global.
  double regional_bias = 0.0;
  netdb::Region home_region = netdb::Region::kNorthAmerica;
  util::SimTime start{};
  util::SimTime end = util::SimTime::days(36500);
  std::uint16_t port = 0;  ///< for scanners: the probed port (metadata)
};

/// Per-class population knobs; the scenario sets counts and rate scales.
struct ClassProfile {
  std::size_t count = 0;
  double rate_scale = 1.0;        ///< multiplies the class's base rate
  double in_country_fraction = 0; ///< placed inside the scenario's country
};

/// Probability that a scan originator is actually the seed of a
/// coordinated *team*: several additional scanners in the same /24 with
/// the same target port (paper §VI-B / Fig. 14's parallelized scanning
/// blocks).
inline constexpr double kScanTeamProbability = 0.18;

struct OriginatorPopulationConfig {
  std::array<ClassProfile, core::kAppClassCount> classes{};
  /// Country of interest for national-authority scenarios; originators
  /// are placed there with each class's in_country_fraction.
  netdb::CountryCode focus_country{'u', 's'};
};

/// Builds a population of originator specs against an address plan.
std::vector<OriginatorSpec> make_population(const AddressPlan& plan,
                                            const OriginatorPopulationConfig& config,
                                            util::Rng& rng);

/// Builds one spec of the given class with the class's default behaviour
/// (rates, kinds, diurnality); used by make_population and by tests.
OriginatorSpec make_spec(core::AppClass cls, const AddressPlan& plan, util::Rng& rng,
                         double rate_scale);

/// Week-scale behavioural drift (paper §V-A/B: "exactly what they do
/// tends to change more rapidly" than who does it).  Deterministic per
/// (originator, week): a lognormal-ish activity-rate factor in roughly
/// [0.6, 1.6].  Drives feature evolution so that a classifier trained
/// once goes stale, as in Figure 7.
double weekly_rate_drift(const OriginatorSpec& spec, std::int64_t week) noexcept;

/// Picks one target for a spec.  `qpop` supplies server populations.
/// `now` lets target selection drift week to week (campaign rotation).
class TargetPicker {
 public:
  TargetPicker(const AddressPlan& plan, const QuerierPopulation& qpop);

  net::IPv4Addr pick(const OriginatorSpec& spec, util::SimTime now,
                     util::Rng& rng) const;

 private:
  net::IPv4Addr pick_end_user(const OriginatorSpec& spec, bool use_region,
                              util::Rng& rng) const;

  const AddressPlan& plan_;
  const QuerierPopulation& qpop_;
  util::ZipfSampler mail_zipf_;
  util::ZipfSampler web_zipf_;
  std::array<std::vector<std::size_t>, 6> user_sites_by_region_{};
  std::vector<std::size_t> user_sites_;
  std::vector<std::size_t> mobile_sites_;
  std::unordered_map<netdb::CountryCode, std::vector<std::size_t>> user_sites_by_country_;
  std::unordered_map<netdb::CountryCode, std::vector<net::IPv4Addr>>
      mail_servers_by_country_;
};

}  // namespace dnsbs::sim
