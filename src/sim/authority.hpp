// Authority observers: the vantage points where backscatter is recorded.
//
// A scenario instantiates one or more authorities — root identities
// (B-Root, M-Root), a national ccTLD-level server (JP-DNS), or the final
// authority for a /24 (the controlled experiments of §IV-D).  The traffic
// engine offers every resolver lookup to every authority; each authority
// decides whether it is on the resolution path (coverage + hierarchy
// level + root selection) and logs a QueryRecord, applying deterministic
// 1:N sampling where configured (M-sampled).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "dns/query_log.hpp"
#include "netdb/geo_db.hpp"
#include "sim/resolver.hpp"

namespace dnsbs::sim {

enum class AuthorityLevel : std::uint8_t { kRoot, kNational, kFinal };

struct AuthorityConfig {
  std::string name = "authority";
  AuthorityLevel level = AuthorityLevel::kRoot;

  /// National: only originators geolocated to this country are covered.
  std::optional<netdb::CountryCode> country;

  /// Final: only originators inside this prefix are covered.
  std::optional<net::Prefix> zone;

  /// Root: probability that a resolver in each region directs its root
  /// query to *this* root identity (13 identities share the load, with
  /// topological bias — B-Root is US-only, M-Root is strong in Asia).
  /// Indexed by netdb::Region.
  std::array<double, 6> root_selection = {0.077, 0.077, 0.077, 0.077, 0.077, 0.077};

  /// Keep 1 of every N queries (deterministic); 1 = unsampled.
  std::uint32_t sample_1_in = 1;
};

class Authority {
 public:
  explicit Authority(AuthorityConfig config) : config_(std::move(config)) {}

  /// Offers one resolved lookup; logs it if this authority was on the
  /// resolution path.  `selection_roll` is a uniform [0,1) draw shared by
  /// all root authorities of the scenario so that at most one root
  /// identity observes a given root query (the engine passes the same
  /// roll to every root and each subtracts its own selection band).
  void offer(const dns::QueryRecord& record, const ResolveOutcome& outcome,
             netdb::Region querier_region, const netdb::GeoDb& geo,
             double& selection_roll);

  const std::vector<dns::QueryRecord>& records() const noexcept { return records_; }
  std::vector<dns::QueryRecord> take_records() noexcept { return std::move(records_); }
  const AuthorityConfig& config() const noexcept { return config_; }

  std::uint64_t offered() const noexcept { return offered_; }
  std::uint64_t observed() const noexcept { return observed_; }

  /// Drops buffered records (e.g. between weekly windows) without
  /// resetting the sampling phase.
  void clear_records() { records_.clear(); }

 private:
  bool covers(net::IPv4Addr originator, const netdb::GeoDb& geo) const;

  AuthorityConfig config_;
  std::vector<dns::QueryRecord> records_;
  std::uint64_t offered_ = 0;
  std::uint64_t observed_ = 0;
  std::uint64_t sample_counter_ = 0;
};

}  // namespace dnsbs::sim
