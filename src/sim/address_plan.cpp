#include "sim/address_plan.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/strings.hpp"

namespace dnsbs::sim {

const std::vector<net::Prefix>& darknet_prefixes() {
  static const std::vector<net::Prefix> kPrefixes = {
      net::Prefix(net::IPv4Addr::from_octets(127, 0, 0, 0), 10),
      net::Prefix(net::IPv4Addr::from_octets(127, 128, 0, 0), 11),
  };
  return kPrefixes;
}

const char* to_string(SiteType t) noexcept {
  switch (t) {
    case SiteType::kResidential: return "residential";
    case SiteType::kCorporate: return "corporate";
    case SiteType::kHosting: return "hosting";
    case SiteType::kUniversity: return "university";
    case SiteType::kMobile: return "mobile";
  }
  return "?";
}

AddressPlan AddressPlan::generate(const AddressPlanConfig& config, std::uint64_t seed) {
  AddressPlan plan;
  util::Rng rng = util::Rng::stream(seed, 0xadd2);

  const auto& countries = netdb::world_countries();
  double weight_total = 0.0;
  for (const auto& c : countries) weight_total += c.weight;

  // 1. Allocate /8s to countries, proportional to weight, in region order
  //    so that neighbouring /8s belong to the same region (as in the real
  //    registry allocations the paper's global entropy relies on).
  struct Allocation {
    netdb::CountryCode cc;
    netdb::Region region;
    std::size_t slash8_count;
  };
  std::vector<Allocation> allocations;
  for (const auto& c : countries) {
    const auto share = static_cast<std::size_t>(std::round(
        static_cast<double>(config.total_slash8) * c.weight / weight_total));
    allocations.push_back({c.code, c.region, std::max<std::size_t>(1, share)});
  }
  std::stable_sort(allocations.begin(), allocations.end(),
                   [](const Allocation& a, const Allocation& b) {
                     return static_cast<int>(a.region) < static_cast<int>(b.region);
                   });

  // /8s from 1 upward, skipping loopback and the historic class-D/E space.
  std::uint32_t next_slash8 = 1;
  const auto take_slash8 = [&next_slash8]() {
    while (next_slash8 == 10 || next_slash8 == 127) ++next_slash8;
    return next_slash8 <= 223 ? next_slash8++ : 0;
  };

  // 2. Each country /8 hosts several ASes, each owning a span of /16s.
  netdb::Asn next_asn = 1000;
  for (const auto& alloc : allocations) {
    for (std::size_t k = 0; k < alloc.slash8_count; ++k) {
      const std::uint32_t s8 = take_slash8();
      if (s8 == 0) break;  // address space exhausted
      const net::Prefix p8(net::IPv4Addr(s8 << 24), 8);
      plan.geo_db_.add(p8, alloc.cc);

      const std::size_t n_as = std::max<std::size_t>(1, config.ases_per_slash8);
      const std::size_t span = 256 / n_as;  // /16s per AS
      for (std::size_t a = 0; a < n_as; ++a) {
        AsInfo info;
        info.asn = next_asn++;
        info.country = alloc.cc;
        info.region = alloc.region;
        const std::string as_name =
            util::format("AS%u-%s-net", info.asn, alloc.cc.to_string().c_str());
        for (std::size_t s = 0; s < span; ++s) {
          const std::uint32_t s16 = (s8 << 8) | static_cast<std::uint32_t>(a * span + s);
          const net::Prefix p16(net::IPv4Addr(s16 << 16), 16);
          info.slash16s.push_back(p16);
          plan.as_db_.add(p16, info.asn, as_name);
        }
        plan.ases_.push_back(std::move(info));
      }
    }
  }

  // 3. Carve /24 sites: pick an AS (weighted toward larger regions via the
  //    AS list itself, which is weight-proportional), a /16, and an unused
  //    /24 index.  Type by the configured mix.
  double mix_total = 0.0;
  for (const double m : config.site_mix) mix_total += m;
  std::unordered_set<std::uint32_t> used_slash24;
  plan.sites_.reserve(config.sites);
  while (plan.sites_.size() < config.sites) {
    const AsInfo& as_info = plan.ases_[rng.below(plan.ases_.size())];
    const net::Prefix& p16 = as_info.slash16s[rng.below(as_info.slash16s.size())];
    const std::uint32_t s24 = (p16.address().value() >> 8) | rng.below(256);
    if (!used_slash24.insert(s24).second) continue;

    Site site;
    site.prefix = net::Prefix(net::IPv4Addr(s24 << 8), 24);
    site.asn = as_info.asn;
    site.country = as_info.country;
    site.region = as_info.region;
    double r = rng.uniform() * mix_total;
    std::size_t type_idx = 0;
    for (; type_idx + 1 < kSiteTypeCount; ++type_idx) {
      r -= config.site_mix[type_idx];
      if (r < 0.0) break;
    }
    site.type = static_cast<SiteType>(type_idx);
    plan.site_trie_.insert(site.prefix, plan.sites_.size());
    plan.by_type_[type_idx].push_back(plan.sites_.size());
    plan.sites_.push_back(site);
  }
  return plan;
}

std::vector<std::size_t> AddressPlan::sites_in_country(netdb::CountryCode cc) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].country == cc) out.push_back(i);
  }
  return out;
}

net::IPv4Addr AddressPlan::random_host(util::Rng& rng, SiteType type) const noexcept {
  const auto& pool = by_type_[static_cast<std::size_t>(type)];
  const Site& site = pool.empty() ? sites_[rng.below(sites_.size())]
                                  : sites_[pool[rng.below(pool.size())]];
  // Host part 1..254 (skip network and broadcast).
  return site.prefix.at(1 + rng.below(254));
}

net::IPv4Addr AddressPlan::random_host(util::Rng& rng) const noexcept {
  const Site& site = sites_[rng.below(sites_.size())];
  return site.prefix.at(1 + rng.below(254));
}

const Site* AddressPlan::site_of(net::IPv4Addr addr) const noexcept {
  const std::size_t* idx = site_trie_.lookup(addr);
  return idx ? &sites_[*idx] : nullptr;
}

}  // namespace dnsbs::sim
