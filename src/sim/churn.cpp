#include "sim/churn.hpp"

#include <algorithm>

namespace dnsbs::sim {

namespace {

double mean_lifetime_days(const OriginatorSpec& spec, const ChurnConfig& config,
                          util::Rng& rng) {
  if (spec.cls == core::AppClass::kScan) {
    return rng.chance(config.scan_core_fraction) ? config.scan_core_mean_days
                                                 : config.malicious_mean_days;
  }
  if (core::is_malicious(spec.cls)) return config.malicious_mean_days;
  return config.benign_mean_days;
}

}  // namespace

std::vector<OriginatorSpec> apply_churn(std::vector<OriginatorSpec> base,
                                        const ChurnConfig& config,
                                        const AddressPlan& plan,
                                        std::span<const VulnerabilityEvent> events,
                                        util::Rng& rng) {
  std::vector<OriginatorSpec> out;
  out.reserve(base.size() * 2);

  for (OriginatorSpec& spec : base) {
    // The initial population is in steady state: lifetimes began before
    // the observation window, so the first death is a residual draw
    // (memorylessness makes that another exponential).
    util::SimTime t = util::SimTime::seconds(0);
    OriginatorSpec current = spec;
    while (t < config.horizon) {
      const double life_days = rng.exponential(1.0 / mean_lifetime_days(current, config, rng));
      const util::SimTime death =
          t + util::SimTime::seconds(static_cast<std::int64_t>(life_days * 86400.0));
      current.start = t;
      current.end = std::min(death, config.horizon);
      out.push_back(current);
      if (death >= config.horizon || !rng.chance(config.replacement_probability)) break;
      // Replacement: same class, fresh behaviour.  Scanning infrastructure
      // is often re-provisioned inside the same network, so half of scan
      // replacements stay in the predecessor's /24 — this is what keeps
      // the paper's "block that scans continuously" (Fig. 14) alive.
      const net::IPv4Addr previous = current.address;
      current = make_spec(current.cls, plan, rng, 1.0);
      if (current.cls == core::AppClass::kScan && rng.chance(0.5)) {
        current.address = net::Prefix(previous, 24).at(1 + rng.below(254));
      }
      t = death;
    }
  }

  // Vulnerability-driven scanning waves: a burst that ramps in and decays.
  // Disclosure scanning often arrives as teams — blocks of parallel
  // workers (the paper's Fig. 14 top line is a Heartbleed-era block).
  for (const VulnerabilityEvent& event : events) {
    net::Prefix team_block(net::IPv4Addr(0), 0);
    bool have_team = false;
    for (std::size_t i = 0; i < event.extra_scanners; ++i) {
      OriginatorSpec spec = make_spec(core::AppClass::kScan, plan, rng, 1.0);
      if (have_team && rng.chance(0.5)) {
        spec.address = team_block.at(1 + rng.below(254));
      } else if (rng.chance(0.3)) {
        team_block = net::Prefix(spec.address, 24);
        have_team = true;
      }
      spec.port = event.port;
      // Staggered starts within the ramp; lifetimes a few weeks.
      spec.start = event.start + util::SimTime::seconds(static_cast<std::int64_t>(
                                     rng.uniform() * event.ramp_duration.secs_f()));
      const double life_days = 5.0 + rng.exponential(1.0 / 21.0);
      spec.end = std::min(
          spec.start + util::SimTime::seconds(static_cast<std::int64_t>(life_days * 86400.0)),
          config.horizon);
      out.push_back(spec);
    }
  }
  return out;
}

}  // namespace dnsbs::sim
