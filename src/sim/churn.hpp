// Population churn over long horizons (paper §V, §VI-C).
//
// Who performs an activity changes over time: benign services are stable
// for months, while spam and scan hosts turn over in weeks as they are
// blacklisted and replaced.  ChurnModel stamps activity windows onto a
// base population and spawns same-class replacements when originators
// die, keeping class populations roughly stationary; vulnerability events
// (Heartbleed) inject bursts of extra scanners.
#pragma once

#include <vector>

#include "sim/originator.hpp"

namespace dnsbs::sim {

struct ChurnConfig {
  util::SimTime horizon = util::SimTime::days(270);
  /// Exponential mean lifetimes.  Benign ~10 months (slow decay, as in
  /// Fig. 5); malicious ~1 month (Fig. 6: 50% gone a month after curation).
  double benign_mean_days = 300.0;
  double malicious_mean_days = 32.0;
  /// Fraction of scanners that are long-lived "core" scanners (the steady
  /// ssh-scanning background of Fig. 13).
  double scan_core_fraction = 0.35;
  double scan_core_mean_days = 400.0;
  /// Dead originators are replaced by fresh ones of the same class with
  /// this probability (keeps populations stationary as in Fig. 11).
  double replacement_probability = 0.95;
};

/// A security disclosure that triggers a scanning wave (Fig. 11's
/// Heartbleed bump: a >25% rise over the steady background for weeks).
struct VulnerabilityEvent {
  util::SimTime start{};
  util::SimTime ramp_duration = util::SimTime::days(14);
  std::size_t extra_scanners = 0;
  std::uint16_t port = 443;
};

/// Expands a base population into a churned population over the horizon:
/// every spec gets a start/end window; replacements and event scanners are
/// appended.  Deterministic under `rng`.
std::vector<OriginatorSpec> apply_churn(std::vector<OriginatorSpec> base,
                                        const ChurnConfig& config,
                                        const AddressPlan& plan,
                                        std::span<const VulnerabilityEvent> events,
                                        util::Rng& rng);

}  // namespace dnsbs::sim
