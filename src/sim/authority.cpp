#include "sim/authority.hpp"

namespace dnsbs::sim {

bool Authority::covers(net::IPv4Addr originator, const netdb::GeoDb& geo) const {
  switch (config_.level) {
    case AuthorityLevel::kRoot:
      return true;
    case AuthorityLevel::kNational: {
      if (!config_.country) return false;
      const auto cc = geo.lookup(originator);
      return cc && *cc == *config_.country;
    }
    case AuthorityLevel::kFinal:
      return config_.zone && config_.zone->contains(originator);
  }
  return false;
}

void Authority::offer(const dns::QueryRecord& record, const ResolveOutcome& outcome,
                      netdb::Region querier_region, const netdb::GeoDb& geo,
                      double& selection_roll) {
  ++offered_;
  if (outcome.served_from_cache) return;
  // A minimizing resolver reveals only the zone labels above the final
  // authority: the query happens, but this vantage cannot attribute it.
  if (outcome.qname_minimized && config_.level != AuthorityLevel::kFinal) return;
  if (!covers(record.originator, geo)) return;

  bool on_path = false;
  switch (config_.level) {
    case AuthorityLevel::kFinal:
      on_path = outcome.reached_final;
      break;
    case AuthorityLevel::kNational:
      on_path = outcome.reached_national;
      break;
    case AuthorityLevel::kRoot: {
      if (!outcome.reached_root) break;
      // Root selection: each root identity owns a band of the shared
      // uniform roll; at most one identity matches.
      const double band = config_.root_selection[static_cast<std::size_t>(querier_region)];
      if (selection_roll < band) {
        on_path = true;
        selection_roll = 2.0;  // consumed: no other root sees this query
      } else {
        selection_roll -= band;
      }
      break;
    }
  }
  if (!on_path) return;

  // Deterministic 1:N sampling, as M-Root's long-term collection policy.
  const bool sampled_in = (sample_counter_++ % config_.sample_1_in) == 0;
  if (!sampled_in) return;

  records_.push_back(record);
  ++observed_;
}

}  // namespace dnsbs::sim
