// The event loop of the synthetic Internet.
//
// Turns originator specs into a time-ordered stream of target touches,
// asks the querier population who looks up the originator, pushes each
// lookup through the per-resolver cache simulation, and offers the
// resulting query to every configured authority.  A raw-traffic observer
// hook lets darknets (labeling::Darknet) watch the same packets the
// sensor only sees indirectly — the basis of the paper's ground-truth
// validation (Appendix A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/authority.hpp"
#include "sim/originator.hpp"
#include "sim/resolver.hpp"

namespace dnsbs::sim {

/// Sees every application-level touch, before any DNS effects.
class TrafficObserver {
 public:
  virtual ~TrafficObserver() = default;
  virtual void on_touch(util::SimTime time, const OriginatorSpec& originator,
                        net::IPv4Addr target) = 0;
};

struct EngineStats {
  std::uint64_t touches = 0;
  std::uint64_t touches_dead_space = 0;  ///< target outside any allocated site
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t final_queries = 0;
  std::uint64_t national_queries = 0;
  std::uint64_t root_queries = 0;
};

class TrafficEngine {
 public:
  TrafficEngine(const AddressPlan& plan, const NamingModel& naming,
                const QuerierPopulation& qpop, ResolverSimConfig resolver_config,
                std::uint64_t seed);

  /// Authorities observing this engine's traffic (not owned).
  void add_authority(Authority* authority) { authorities_.push_back(authority); }

  /// Raw traffic tap (not owned); optional.
  void set_traffic_observer(TrafficObserver* observer) { observer_ = observer; }

  /// Simulates [t0, t1).  Can be called repeatedly with increasing
  /// windows; resolver caches persist across calls (so TTL state carries
  /// from one day to the next, as it must for the long-term studies).
  void run(std::span<const OriginatorSpec> population, util::SimTime t0, util::SimTime t1);

  const EngineStats& stats() const noexcept { return stats_; }
  const ResolverSim& resolvers() const noexcept { return resolvers_; }

 private:
  void process_touch(const OriginatorSpec& spec, util::SimTime now);

  const AddressPlan& plan_;
  const NamingModel& naming_;
  const QuerierPopulation& qpop_;
  ResolverSim resolvers_;
  TargetPicker picker_;
  std::vector<Authority*> authorities_;
  TrafficObserver* observer_ = nullptr;
  util::Rng rng_;
  EngineStats stats_;
};

}  // namespace dnsbs::sim
