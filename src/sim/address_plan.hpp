// Synthetic IPv4 allocation plan.
//
// Stands in for the real Internet's address registries: /8s are allocated
// to countries clustered by region (so the high octet carries geographic
// signal, as the paper's global-entropy feature assumes), ASes own /16s
// inside their country's /8s, and "sites" (/24 networks with a role, e.g.
// residential pool or hosting center) are carved from AS space.  The plan
// populates the AS and geo databases that the dynamic feature extractor
// queries, exactly as the paper used whois and MaxMind.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/prefix_trie.hpp"

#include "net/ipv4.hpp"
#include "netdb/as_db.hpp"
#include "netdb/geo_db.hpp"
#include "util/rng.hpp"

namespace dnsbs::sim {

/// What kind of network a /24 site is; drives querier roles and naming.
enum class SiteType : std::uint8_t {
  kResidential,  ///< ISP customer pool: home hosts behind a shared resolver
  kCorporate,    ///< office network: firewall, mail server, generic hosts
  kHosting,      ///< datacenter: servers, some CDN/cloud nodes
  kUniversity,   ///< campus: mix of servers and clients, own resolver
  kMobile,       ///< mobile carrier pool: NATed pools, carrier resolver
};
inline constexpr std::size_t kSiteTypeCount = 5;

const char* to_string(SiteType t) noexcept;

struct Site {
  net::Prefix prefix;        ///< the /24
  netdb::Asn asn = 0;
  netdb::CountryCode country;
  netdb::Region region = netdb::Region::kNorthAmerica;
  SiteType type = SiteType::kResidential;
};

struct AsInfo {
  netdb::Asn asn = 0;
  netdb::CountryCode country;
  netdb::Region region = netdb::Region::kNorthAmerica;
  std::vector<net::Prefix> slash16s;
};

struct AddressPlanConfig {
  std::size_t total_slash8 = 96;   ///< /8s to allocate across countries
  std::size_t sites = 20000;       ///< /24 sites carved from AS space
  std::size_t ases_per_slash8 = 4; ///< ASes sharing each /8
  /// Mix of site types (residential, corporate, hosting, university,
  /// mobile); normalized internally.
  std::array<double, kSiteTypeCount> site_mix = {0.55, 0.16, 0.12, 0.05, 0.12};
};

/// Unallocated blocks reserved for darknet monitoring (inside 127/8, which
/// the plan never assigns).  The paper's darknets were a /17 + /18; ours
/// are proportionally larger because our scanners send thousands rather
/// than millions of probes (see DESIGN.md).
const std::vector<net::Prefix>& darknet_prefixes();

class AddressPlan {
 public:
  static AddressPlan generate(const AddressPlanConfig& config, std::uint64_t seed);

  const netdb::AsDb& as_db() const noexcept { return as_db_; }
  const netdb::GeoDb& geo_db() const noexcept { return geo_db_; }
  const std::vector<Site>& sites() const noexcept { return sites_; }
  const std::vector<AsInfo>& ases() const noexcept { return ases_; }

  /// Sites of a given type (indices into sites()).
  const std::vector<std::size_t>& sites_of_type(SiteType t) const noexcept {
    return by_type_[static_cast<std::size_t>(t)];
  }

  /// Sites in a given country (indices into sites()).
  std::vector<std::size_t> sites_in_country(netdb::CountryCode cc) const;

  /// A uniformly random allocated site.
  const Site& random_site(util::Rng& rng) const noexcept {
    return sites_[rng.below(sites_.size())];
  }

  /// A random host address inside a random site of the given type.
  net::IPv4Addr random_host(util::Rng& rng, SiteType type) const noexcept;

  /// A random host anywhere in allocated space.
  net::IPv4Addr random_host(util::Rng& rng) const noexcept;

  /// True if the address falls inside any allocated site.
  const Site* site_of(net::IPv4Addr addr) const noexcept;

 private:
  netdb::AsDb as_db_;
  netdb::GeoDb geo_db_;
  std::vector<Site> sites_;
  std::vector<AsInfo> ases_;
  std::array<std::vector<std::size_t>, kSiteTypeCount> by_type_{};
  net::PrefixTrie<std::size_t> site_trie_;  ///< /24 -> index into sites_
};

}  // namespace dnsbs::sim
