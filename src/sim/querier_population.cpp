#include "sim/querier_population.hpp"

namespace dnsbs::sim {

const char* to_string(TrafficKind k) noexcept {
  switch (k) {
    case TrafficKind::kSmtp: return "smtp";
    case TrafficKind::kScanProbe: return "scan-probe";
    case TrafficKind::kWebFetch: return "web-fetch";
    case TrafficKind::kCrawlVisit: return "crawl-visit";
    case TrafficKind::kDnsTraffic: return "dns";
    case TrafficKind::kNtpTraffic: return "ntp";
    case TrafficKind::kP2pTraffic: return "p2p";
  }
  return "?";
}

QuerierPopulation::QuerierPopulation(const NamingModel& naming,
                                     QuerierPopulationConfig config, std::uint64_t seed)
    : naming_(naming), config_(config) {
  // Precompute server populations from the plan's site layout (the role
  // map is deterministic, so this is a pure index of the synthetic world).
  util::Rng rng = util::Rng::stream(seed, 0x9096);
  const AddressPlan& plan = naming_.plan();
  for (const Site& site : plan.sites()) {
    switch (site.type) {
      case SiteType::kCorporate:
        mail_servers_.push_back(site.prefix.at(2));
        web_servers_.push_back(site.prefix.at(5));
        dns_servers_.push_back(site.prefix.at(4));
        break;
      case SiteType::kUniversity:
        mail_servers_.push_back(site.prefix.at(2));
        web_servers_.push_back(site.prefix.at(3));
        dns_servers_.push_back(site.prefix.at(1));
        break;
      case SiteType::kHosting:
        mail_servers_.push_back(site.prefix.at(2));
        // Sample the tenant mix for servers with useful roles.
        for (int probe = 0; probe < 12; ++probe) {
          const net::IPv4Addr host = site.prefix.at(3 + rng.below(252));
          switch (naming_.role_of(host)) {
            case HostRole::kWebServer: web_servers_.push_back(host); break;
            case HostRole::kOpenResolver: open_resolvers_.push_back(host); break;
            case HostRole::kMailServer: mail_servers_.push_back(host); break;
            default: break;
          }
        }
        break;
      default:
        break;
    }
  }
  // Guarantee at least one open resolver exists even in tiny plans.
  if (open_resolvers_.empty() && !plan.sites().empty()) {
    open_resolvers_.push_back(plan.sites().front().prefix.at(250));
  }
}

net::IPv4Addr QuerierPopulation::site_resolver(const Site& site) const noexcept {
  switch (site.type) {
    case SiteType::kResidential:
    case SiteType::kMobile:
      return site.prefix.at(1);  // ISP pool resolver
    case SiteType::kCorporate:
      return site.prefix.at(4);
    case SiteType::kUniversity:
    case SiteType::kHosting:
      return site.prefix.at(1);
  }
  return site.prefix.at(1);
}

net::IPv4Addr QuerierPopulation::pick_open_resolver(util::Rng& rng) const noexcept {
  return open_resolvers_[rng.below(open_resolvers_.size())];
}

std::vector<Lookup> QuerierPopulation::lookups_for(net::IPv4Addr target, TrafficKind kind,
                                                   util::Rng& rng) const {
  std::vector<Lookup> out;
  const Site* site = naming_.plan().site_of(target);
  if (!site) return out;
  const auto type_idx = static_cast<std::size_t>(site->type);
  const net::IPv4Addr resolver = site_resolver(*site);

  // Resolution path for a host that wants the originator's name: usually
  // through the site/ISP resolver, sometimes self-recursing, sometimes a
  // public resolver.
  const auto via = [&](net::IPv4Addr host) -> net::IPv4Addr {
    if (rng.chance(config_.open_resolver_prob)) return pick_open_resolver(rng);
    if (rng.chance(config_.self_resolving_host_prob)) return host;
    return resolver;
  };

  switch (kind) {
    case TrafficKind::kSmtp: {
      // The MTA itself checks the sender; MTAs mostly run their own
      // recursion (which is why mail names dominate spam backscatter).
      if (rng.chance(config_.smtp_lookup_prob)) {
        out.push_back(Lookup{rng.chance(0.70) ? target : resolver});
      }
      if (site->type == SiteType::kCorporate && rng.chance(config_.antispam_extra_prob)) {
        const net::IPv4Addr appliance = site->prefix.at(3);
        out.push_back(Lookup{rng.chance(0.5) ? appliance : resolver});
      }
      break;
    }
    case TrafficKind::kScanProbe: {
      if (!rng.chance(config_.scan_log_prob[type_idx])) break;
      switch (site->type) {
        case SiteType::kCorporate:
        case SiteType::kUniversity: {
          // Perimeter firewall logs the probe.
          const net::IPv4Addr fw =
              site->type == SiteType::kCorporate ? site->prefix.at(1) : site->prefix.at(4);
          out.push_back(Lookup{rng.chance(0.45) ? fw : resolver});
          break;
        }
        case SiteType::kResidential:
        case SiteType::kMobile: {
          // CPE or host logging, almost always via the ISP resolver.
          out.push_back(Lookup{via(target)});
          break;
        }
        case SiteType::kHosting: {
          // Servers log ssh/http probes; many run local recursion.
          out.push_back(Lookup{rng.chance(0.55) ? target : resolver});
          break;
        }
      }
      break;
    }
    case TrafficKind::kWebFetch:
    case TrafficKind::kNtpTraffic: {
      // Target-initiated traffic: logging middleboxes near the client.
      if (!rng.chance(config_.web_log_prob[type_idx])) break;
      if (site->type == SiteType::kCorporate) {
        out.push_back(Lookup{rng.chance(0.5) ? site->prefix.at(1) : resolver});
      } else {
        out.push_back(Lookup{via(target)});
      }
      break;
    }
    case TrafficKind::kCrawlVisit: {
      if (!rng.chance(config_.crawl_log_prob)) break;
      // The web server resolves visitors for its access logs.
      out.push_back(Lookup{rng.chance(0.5) ? target : resolver});
      break;
    }
    case TrafficKind::kDnsTraffic: {
      if (!rng.chance(0.30)) break;
      out.push_back(Lookup{rng.chance(0.6) ? target : resolver});
      break;
    }
    case TrafficKind::kP2pTraffic: {
      if (!rng.chance(config_.scan_log_prob[type_idx] * 0.8)) break;
      out.push_back(Lookup{via(target)});
      break;
    }
  }
  return out;
}

}  // namespace dnsbs::sim
