// Deterministic reverse-DNS naming for the synthetic Internet.
//
// Every simulated host has a stable identity derived from its address:
// a role inside its /24 site (firewall, mail server, resolver, home host,
// ...) and a reverse name following the conventions the paper's static
// features key on (home1-2-3-4.isp.example, mail.corp.example,
// ns1.isp.example, ec2-*.amazonaws.com, ...).  A configurable fraction of
// hosts have no reverse name (NXDOMAIN) or an unreachable reverse
// authority, matching the paper's observation of 14-19% nameless queriers.
//
// NamingModel implements core::QuerierResolver, so the sensor's feature
// extractor consumes it exactly as a live deployment would consume real
// reverse lookups.
#pragma once

#include <cstdint>

#include "core/static_features.hpp"
#include "sim/address_plan.hpp"

namespace dnsbs::sim {

/// The function a host performs inside its site; decides both who issues
/// reverse queries for which traffic and what the host's name looks like.
enum class HostRole : std::uint8_t {
  kIspResolver,   ///< shared recursive resolver of an ISP / carrier (ns names)
  kSiteResolver,  ///< per-site nameserver (ns names)
  kFirewall,      ///< perimeter firewall (fw names)
  kMailServer,    ///< MTA (mail names)
  kAntispam,      ///< anti-spam appliance (ironport/spam names)
  kWebServer,     ///< www names
  kNtpServer,     ///< ntp names
  kHomeHost,      ///< residential pool host (home keyword + address digits)
  kMobileHost,    ///< carrier pool host (pool/dynamic names)
  kCorpHost,      ///< office desktop (generic name or none)
  kServer,        ///< generic hosting-center server
  kCdnNode,       ///< CDN infrastructure (akamai/edgecast/... suffix)
  kCloudAwsNode,  ///< EC2-style node (amazonaws suffix)
  kCloudMsNode,   ///< Azure-style node
  kGoogleNode,    ///< Google infrastructure (google suffix)
  kOpenResolver,  ///< large public resolver (google-public-dns style)
};

const char* to_string(HostRole r) noexcept;

struct NamingConfig {
  /// Fraction of (non-infrastructure) hosts with no PTR record, per site
  /// type (residential, corporate, hosting, university, mobile).
  std::array<double, kSiteTypeCount> nxdomain_fraction = {0.20, 0.10, 0.14, 0.08, 0.24};
  /// Fraction whose reverse authority is unreachable.
  double unreach_fraction = 0.03;
};

class NamingModel final : public core::QuerierResolver {
 public:
  NamingModel(const AddressPlan& plan, NamingConfig config, std::uint64_t seed);

  /// The host's role, stable per address.
  HostRole role_of(net::IPv4Addr addr) const;

  /// QuerierResolver: the name a reverse lookup of `querier` yields.
  core::QuerierInfo resolve(net::IPv4Addr querier) const override;

  /// True if the address owns a PTR record (drives the rcode the final
  /// authority returns for backscatter about this originator).
  bool has_reverse(net::IPv4Addr addr) const;

  /// PTR TTL for addresses in this /24 (per-zone operator policy; mix of
  /// 10 min to 1 day as in the paper's Table VII TTL column).
  std::uint32_t ptr_ttl(net::IPv4Addr addr) const;

  /// Negative-caching TTL for the /24 (SOA MINIMUM).
  std::uint32_t negative_ttl(net::IPv4Addr addr) const;

  const AddressPlan& plan() const noexcept { return plan_; }

 private:
  std::uint64_t mix(net::IPv4Addr addr, std::uint64_t salt) const noexcept;

  const AddressPlan& plan_;
  NamingConfig config_;
  std::uint64_t seed_;
};

}  // namespace dnsbs::sim
