#include "sim/traffic_engine.hpp"

#include <algorithm>
#include <cmath>

namespace dnsbs::sim {

namespace {

/// Diurnal rate modulation: 1 + s*cos(2*pi*(h-peak)/24), normalized so the
/// mean over a day stays the configured rate.
double diurnal_factor(const OriginatorSpec& spec, util::SimTime t) noexcept {
  if (spec.diurnal_strength <= 0.0) return 1.0;
  const double h = t.hour_of_day();
  return 1.0 + spec.diurnal_strength *
                   std::cos(2.0 * 3.141592653589793 * (h - spec.diurnal_peak_hour) / 24.0);
}

struct Event {
  std::int64_t time_secs;
  std::uint32_t spec_index;
};

}  // namespace

TrafficEngine::TrafficEngine(const AddressPlan& plan, const NamingModel& naming,
                             const QuerierPopulation& qpop,
                             ResolverSimConfig resolver_config, std::uint64_t seed)
    : plan_(plan),
      naming_(naming),
      qpop_(qpop),
      resolvers_(naming, resolver_config, seed),
      picker_(plan, qpop),
      rng_(util::Rng::stream(seed, 0xe4614e)) {}

void TrafficEngine::run(std::span<const OriginatorSpec> population, util::SimTime t0,
                        util::SimTime t1) {
  // Generate arrivals per originator (thinned Poisson for diurnality),
  // then globally time-order so shared cache state evolves realistically.
  std::vector<Event> events;
  for (std::uint32_t idx = 0; idx < population.size(); ++idx) {
    const OriginatorSpec& spec = population[idx];
    const util::SimTime begin = std::max(t0, spec.start);
    const util::SimTime end = std::min(t1, spec.end);
    if (begin >= end) continue;
    // Peak envelope covers both the diurnal swing and the weekly
    // behavioural drift (max factor e^0.5).
    constexpr double kMaxDrift = 1.6487212707;
    const double peak_rate_per_sec =
        spec.touches_per_hour * (1.0 + spec.diurnal_strength) * kMaxDrift / 3600.0;
    if (peak_rate_per_sec <= 0.0) continue;
    double t = begin.secs_f();
    const double t_end = end.secs_f();
    while (true) {
      t += rng_.exponential(peak_rate_per_sec);
      if (t >= t_end) break;
      const util::SimTime now = util::SimTime::seconds(static_cast<std::int64_t>(t));
      // Thinning: accept with prob rate(now)/peak, where rate folds in
      // the diurnal cycle and this week's drift factor.
      const double accept = diurnal_factor(spec, now) /
                            (1.0 + spec.diurnal_strength) *
                            weekly_rate_drift(spec, now.week_index()) / kMaxDrift;
      if (rng_.chance(accept)) {
        events.push_back(Event{now.secs(), idx});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.time_secs < b.time_secs; });

  for (const Event& ev : events) {
    process_touch(population[ev.spec_index], util::SimTime::seconds(ev.time_secs));
  }
}

void TrafficEngine::process_touch(const OriginatorSpec& spec, util::SimTime now) {
  ++stats_.touches;
  const net::IPv4Addr target = picker_.pick(spec, now, rng_);
  if (observer_) observer_->on_touch(now, spec, target);

  const Site* site = plan_.site_of(target);
  if (!site) {
    ++stats_.touches_dead_space;
    return;
  }

  const auto lookups = qpop_.lookups_for(target, spec.kind, rng_);
  for (const Lookup& lookup : lookups) {
    ++stats_.lookups;
    const ResolveOutcome outcome = resolvers_.resolve(lookup.querier, spec.address, now);
    if (outcome.served_from_cache) {
      ++stats_.cache_hits;
      continue;
    }
    if (outcome.reached_final) ++stats_.final_queries;
    if (outcome.reached_national) ++stats_.national_queries;
    if (outcome.reached_root) ++stats_.root_queries;

    dns::QueryRecord record;
    record.time = now;
    record.querier = lookup.querier;
    record.originator = spec.address;
    record.rcode = outcome.rcode;

    const Site* querier_site = plan_.site_of(lookup.querier);
    const netdb::Region region =
        querier_site ? querier_site->region : netdb::Region::kNorthAmerica;
    double selection_roll = rng_.uniform();
    for (Authority* authority : authorities_) {
      authority->offer(record, outcome, region, plan_.geo_db(), selection_roll);
    }
  }
}

}  // namespace dnsbs::sim
