// Querier behaviour: who issues the reverse DNS lookup when network-wide
// activity touches a target (paper §II "At the Target").
//
// A scan probe against a corporate network is logged by the firewall; mail
// delivery triggers the MTA's sender check (and sometimes an anti-spam
// appliance); content fetched by a home user may be logged by the ISP's
// middleboxes.  Each of those actors resolves through some recursive
// resolver — and the *resolver* is the address the authority sees.  This
// module turns (target, traffic kind) into the set of querier addresses
// whose lookups the resolver simulation should execute.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/naming.hpp"
#include "util/rng.hpp"

namespace dnsbs::sim {

/// The application traffic that reaches (or is pulled by) a target.
enum class TrafficKind : std::uint8_t {
  kSmtp,       ///< mail delivery (classes mail, spam)
  kScanProbe,  ///< unsolicited probe (class scan, misbehaving p2p)
  kWebFetch,   ///< target-initiated content fetch (ad-tracker, cdn, cloud, update, push)
  kCrawlVisit, ///< originator fetches from the target's web server (crawler)
  kDnsTraffic, ///< originator is a large DNS server talking to targets
  kNtpTraffic, ///< originator serves NTP to the target
  kP2pTraffic, ///< peer-to-peer exchange with the target
};

const char* to_string(TrafficKind k) noexcept;

/// One reverse lookup that will be executed by a recursive resolver.
struct Lookup {
  net::IPv4Addr querier;  ///< resolver address visible at the authority
};

struct QuerierPopulationConfig {
  /// Probability that a touch triggers any reverse lookup at all, per site
  /// type (residential, corporate, hosting, university, mobile).  These
  /// are deliberately small for pools (most home targets never look up a
  /// scanner) and larger for managed networks.
  std::array<double, kSiteTypeCount> scan_log_prob = {0.08, 0.30, 0.35, 0.30, 0.05};
  std::array<double, kSiteTypeCount> web_log_prob = {0.12, 0.25, 0.10, 0.20, 0.10};
  double smtp_lookup_prob = 0.92;     ///< MTAs almost always check senders
  double antispam_extra_prob = 0.35;  ///< second lookup by anti-spam middlebox
  double crawl_log_prob = 0.40;
  double open_resolver_prob = 0.07;   ///< client uses a public resolver
  double self_resolving_host_prob = 0.30;  ///< host/CPE runs its own recursion
};

class QuerierPopulation {
 public:
  QuerierPopulation(const NamingModel& naming, QuerierPopulationConfig config,
                    std::uint64_t seed);

  /// The reverse lookups triggered when `kind` traffic touches `target`.
  /// Returns zero, one, or two lookups.
  std::vector<Lookup> lookups_for(net::IPv4Addr target, TrafficKind kind,
                                  util::Rng& rng) const;

  /// Mail-server addresses usable as SMTP targets (one per corporate /
  /// university / hosting site); originator models draw spam/mail targets
  /// from this population.
  const std::vector<net::IPv4Addr>& mail_servers() const noexcept { return mail_servers_; }

  /// Web servers (crawl targets).
  const std::vector<net::IPv4Addr>& web_servers() const noexcept { return web_servers_; }

  /// Authoritative-DNS-ish servers (targets for class dns).
  const std::vector<net::IPv4Addr>& dns_servers() const noexcept { return dns_servers_; }

  const std::vector<net::IPv4Addr>& open_resolvers() const noexcept {
    return open_resolvers_;
  }

 private:
  net::IPv4Addr site_resolver(const Site& site) const noexcept;
  net::IPv4Addr pick_open_resolver(util::Rng& rng) const noexcept;

  const NamingModel& naming_;
  QuerierPopulationConfig config_;
  std::vector<net::IPv4Addr> mail_servers_;
  std::vector<net::IPv4Addr> web_servers_;
  std::vector<net::IPv4Addr> dns_servers_;
  std::vector<net::IPv4Addr> open_resolvers_;
};

}  // namespace dnsbs::sim
