#include "sim/naming.hpp"

#include "util/strings.hpp"

namespace dnsbs::sim {

namespace {

/// Stable per-(address, salt) hash for all naming decisions.
std::uint64_t splitmix(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Picks with hash h a value in [0,n).
std::size_t hpick(std::uint64_t h, std::size_t n) noexcept { return h % n; }

double hfrac(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(HostRole r) noexcept {
  switch (r) {
    case HostRole::kIspResolver: return "isp-resolver";
    case HostRole::kSiteResolver: return "site-resolver";
    case HostRole::kFirewall: return "firewall";
    case HostRole::kMailServer: return "mail-server";
    case HostRole::kAntispam: return "antispam";
    case HostRole::kWebServer: return "web-server";
    case HostRole::kNtpServer: return "ntp-server";
    case HostRole::kHomeHost: return "home-host";
    case HostRole::kMobileHost: return "mobile-host";
    case HostRole::kCorpHost: return "corp-host";
    case HostRole::kServer: return "server";
    case HostRole::kCdnNode: return "cdn-node";
    case HostRole::kCloudAwsNode: return "aws-node";
    case HostRole::kCloudMsNode: return "ms-node";
    case HostRole::kGoogleNode: return "google-node";
    case HostRole::kOpenResolver: return "open-resolver";
  }
  return "?";
}

NamingModel::NamingModel(const AddressPlan& plan, NamingConfig config, std::uint64_t seed)
    : plan_(plan), config_(config), seed_(seed) {}

std::uint64_t NamingModel::mix(net::IPv4Addr addr, std::uint64_t salt) const noexcept {
  return splitmix(seed_ ^ (static_cast<std::uint64_t>(addr.value()) << 13) ^ salt);
}

HostRole NamingModel::role_of(net::IPv4Addr addr) const {
  const Site* site = plan_.site_of(addr);
  const std::uint32_t host = addr.value() & 0xff;
  if (!site) return HostRole::kServer;

  switch (site->type) {
    case SiteType::kResidential:
      // Hosts 1-2 are the ISP's resolvers for this pool region; the rest
      // are customers.
      if (host <= 2) return HostRole::kIspResolver;
      return HostRole::kHomeHost;

    case SiteType::kMobile:
      if (host <= 2) return HostRole::kIspResolver;
      return HostRole::kMobileHost;

    case SiteType::kCorporate:
      switch (host) {
        case 1: return HostRole::kFirewall;
        case 2: return HostRole::kMailServer;
        case 3: return HostRole::kAntispam;
        case 4: return HostRole::kSiteResolver;
        case 5: return HostRole::kWebServer;
        case 6: return HostRole::kNtpServer;
        default: return HostRole::kCorpHost;
      }

    case SiteType::kUniversity:
      switch (host) {
        case 1: return HostRole::kSiteResolver;
        case 2: return HostRole::kMailServer;
        case 3: return HostRole::kWebServer;
        case 4: return HostRole::kFirewall;
        default: return HostRole::kCorpHost;
      }

    case SiteType::kHosting: {
      // Datacenters are a mix: a resolver and mail relay for the facility,
      // then a stable hash decides each server's tenancy.
      if (host == 1) return HostRole::kSiteResolver;
      if (host == 2) return HostRole::kMailServer;
      const std::uint64_t h = mix(addr, 0x401e);
      const double r = hfrac(h);
      if (r < 0.10) return HostRole::kCdnNode;
      if (r < 0.22) return HostRole::kCloudAwsNode;
      if (r < 0.28) return HostRole::kCloudMsNode;
      if (r < 0.31) return HostRole::kGoogleNode;
      if (r < 0.33) return HostRole::kOpenResolver;
      if (r < 0.45) return HostRole::kWebServer;
      if (r < 0.50) return HostRole::kMailServer;
      return HostRole::kServer;
    }
  }
  return HostRole::kServer;
}

bool NamingModel::has_reverse(net::IPv4Addr addr) const {
  const Site* site = plan_.site_of(addr);
  const HostRole role = role_of(addr);
  // Infrastructure is essentially always named; pool/desktop hosts miss
  // reverse names at the configured per-site-type rate.
  const bool pool_host = role == HostRole::kHomeHost || role == HostRole::kMobileHost ||
                         role == HostRole::kCorpHost || role == HostRole::kServer;
  if (!pool_host) return true;
  const double frac =
      site ? config_.nxdomain_fraction[static_cast<std::size_t>(site->type)] : 0.5;
  return hfrac(mix(addr, 0x9a3e)) >= frac;
}

std::uint32_t NamingModel::ptr_ttl(net::IPv4Addr addr) const {
  static constexpr std::uint32_t kTtls[] = {600, 1200, 3600, 14400, 28800, 86400, 86400};
  const std::uint64_t h = splitmix(seed_ ^ addr.slash24());
  return kTtls[hpick(h, std::size(kTtls))];
}

std::uint32_t NamingModel::negative_ttl(net::IPv4Addr addr) const {
  static constexpr std::uint32_t kTtls[] = {60, 600, 1800, 3600, 10800, 86400};
  const std::uint64_t h = splitmix(seed_ ^ addr.slash24() ^ 0x7e6a);
  return kTtls[hpick(h, std::size(kTtls))];
}

core::QuerierInfo NamingModel::resolve(net::IPv4Addr querier) const {
  core::QuerierInfo info;
  const std::uint64_t h = mix(querier, 0x6a6e);

  if (!has_reverse(querier)) {
    info.status = core::ResolveStatus::kNxDomain;
    return info;
  }

  const Site* site = plan_.site_of(querier);
  const HostRole role = role_of(querier);

  // Broken reverse delegations afflict pool/desktop space, not the
  // infrastructure hosts whose operators depend on their reverse names.
  const bool pool_host = role == HostRole::kHomeHost || role == HostRole::kMobileHost ||
                         role == HostRole::kCorpHost || role == HostRole::kServer;
  if (pool_host && hfrac(splitmix(h ^ 0x12)) < config_.unreach_fraction) {
    info.status = core::ResolveStatus::kUnreachable;
    return info;
  }
  const std::string cc = site ? site->country.to_string() : "com";
  const std::uint32_t asn = site ? site->asn : 0;
  const std::uint32_t a = querier.octet(0), b = querier.octet(1), c = querier.octet(2),
                      d = querier.octet(3);
  // Operator domains: residential/mobile pools live under the ISP (AS)
  // domain; corporate and university sites have their own.
  const std::string isp_domain = util::format("isp%u.%s", asn, cc.c_str());
  const std::string org_domain = util::format("corp%u.co.%s", querier.slash24(), cc.c_str());
  const std::string univ_domain = util::format("univ%u.ac.%s", querier.slash24(), cc.c_str());
  const std::string dc_domain = util::format("dc%u.com", asn);

  std::string name;
  switch (role) {
    case HostRole::kIspResolver: {
      static constexpr const char* kNs[] = {"ns", "dns", "cns", "resolver", "cache"};
      name = util::format("%s%u.%s", kNs[hpick(h, std::size(kNs))], d, isp_domain.c_str());
      break;
    }
    case HostRole::kSiteResolver: {
      static constexpr const char* kNs[] = {"ns", "dns", "ns1", "namesrv"};
      const Site* s = plan_.site_of(querier);
      const std::string& dom = s && s->type == SiteType::kUniversity ? univ_domain
                               : s && s->type == SiteType::kHosting  ? dc_domain
                                                                     : org_domain;
      name = util::format("%s.%s", kNs[hpick(h, std::size(kNs))], dom.c_str());
      break;
    }
    case HostRole::kFirewall: {
      static constexpr const char* kFw[] = {"firewall", "fw", "fw1", "gw-wall"};
      name = util::format("%s.%s", kFw[hpick(h, std::size(kFw))], org_domain.c_str());
      break;
    }
    case HostRole::kMailServer: {
      static constexpr const char* kMail[] = {"mail", "mx", "smtp", "mta", "mail1",
                                              "smtp2", "zimbra", "imap"};
      const Site* s = plan_.site_of(querier);
      const std::string& dom = s && s->type == SiteType::kHosting ? dc_domain
                               : s && s->type == SiteType::kUniversity ? univ_domain
                                                                       : org_domain;
      name = util::format("%s.%s", kMail[hpick(h, std::size(kMail))], dom.c_str());
      break;
    }
    case HostRole::kAntispam: {
      static constexpr const char* kAs[] = {"ironport", "spam-filter", "spam-gw"};
      name = util::format("%s.%s", kAs[hpick(h, std::size(kAs))], org_domain.c_str());
      break;
    }
    case HostRole::kWebServer:
      name = util::format("www%u.%s", d, dc_domain.c_str());
      break;
    case HostRole::kNtpServer:
      name = util::format("ntp%u.%s", d % 4, org_domain.c_str());
      break;
    case HostRole::kHomeHost: {
      static constexpr const char* kHome[] = {"home",   "cpe",  "customer", "dsl",
                                              "dynamic", "pool", "cable",    "fiber",
                                              "user",    "host"};
      name = util::format("%s%u-%u-%u-%u.%s", kHome[hpick(h, std::size(kHome))], a, b, c, d,
                          isp_domain.c_str());
      break;
    }
    case HostRole::kMobileHost: {
      static constexpr const char* kMob[] = {"pool", "dynamic", "flets", "ap", "net"};
      name = util::format("%s-%u-%u-%u-%u.mobile.%s", kMob[hpick(h, std::size(kMob))], a, b,
                          c, d, isp_domain.c_str());
      break;
    }
    case HostRole::kCorpHost: {
      // Desktop naming is idiosyncratic; most carry no keyword.
      static constexpr const char* kPc[] = {"pc", "desktop", "ws", "lab", "printer"};
      name = util::format("%s-%u.%s", kPc[hpick(h, std::size(kPc))], d, org_domain.c_str());
      break;
    }
    case HostRole::kServer: {
      static constexpr const char* kSrv[] = {"srv", "app", "db", "vps", "node"};
      name = util::format("%s%u-%u.%s", kSrv[hpick(h, std::size(kSrv))], c, d,
                          dc_domain.c_str());
      break;
    }
    case HostRole::kCdnNode: {
      static constexpr const char* kCdn[] = {"akamai", "akamaitech", "edgecast",
                                             "cdnetworks", "llnwd"};
      const char* provider = kCdn[hpick(h, std::size(kCdn))];
      name = util::format("a%u-%u.deploy.%s.com", c, d, provider);
      break;
    }
    case HostRole::kCloudAwsNode:
      name = util::format("ec2-%u-%u-%u-%u.compute.amazonaws.com", a, b, c, d);
      break;
    case HostRole::kCloudMsNode:
      name = util::format("vm%u-%u.cloudapp.azure.com", c, d);
      break;
    case HostRole::kGoogleNode:
      name = util::format("rate-limited-proxy-%u-%u-%u-%u.google.com", a, b, c, d);
      break;
    case HostRole::kOpenResolver:
      name = util::format("public%u.google.com", d);
      break;
  }

  if (auto parsed = dns::DnsName::parse(name)) {
    info.status = core::ResolveStatus::kOk;
    info.name = std::move(*parsed);
  } else {
    info.status = core::ResolveStatus::kNxDomain;
  }
  return info;
}

}  // namespace dnsbs::sim
