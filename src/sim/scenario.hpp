// Scenario presets mirroring the paper's datasets (Table I) and the glue
// that builds a whole synthetic world: address plan, naming, queriers,
// resolver caches, authorities, and an originator population.
//
//   jp_ditl        ccTLD-level national authority, 50 h, unsampled
//   b_post_ditl    B-Root (US-only anycast), 36 h, unsampled
//   m_ditl         M-Root (Asia/NA/EU anycast), 50 h, unsampled
//   m_sampled      M-Root, long horizon, 1:10 deterministic sampling
//   b_multi_year   B-Root, long horizon, unsampled (training-over-time)
//
// The real datasets are proprietary operator traces; DESIGN.md documents
// the substitution.  A `scale` knob shrinks populations/rates uniformly so
// tests run in milliseconds while benches use fuller worlds.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "sim/churn.hpp"
#include "sim/traffic_engine.hpp"

namespace dnsbs::sim {

struct ScenarioConfig {
  std::string name = "scenario";
  std::uint64_t seed = 1;
  AddressPlanConfig plan;
  NamingConfig naming;
  QuerierPopulationConfig queriers;
  ResolverSimConfig resolver;
  OriginatorPopulationConfig originators;
  std::vector<AuthorityConfig> authorities;
  util::SimTime duration = util::SimTime::hours(50);
  /// Long-horizon scenarios enable churn; short DITL-style ones do not.
  bool churn_enabled = false;
  ChurnConfig churn;
  std::vector<VulnerabilityEvent> events;
};

/// A built world plus its engine.  Owns all components with stable
/// addresses so cross-references (naming -> plan, etc.) stay valid.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs the whole configured duration.
  void run() { run_window(util::SimTime::seconds(0), config_.duration); }

  /// Runs one window (caches persist between calls).
  void run_window(util::SimTime t0, util::SimTime t1);

  const ScenarioConfig& config() const noexcept { return config_; }
  const AddressPlan& plan() const noexcept { return *plan_; }
  const NamingModel& naming() const noexcept { return *naming_; }
  const QuerierPopulation& queriers() const noexcept { return *queriers_; }
  TrafficEngine& engine() noexcept { return *engine_; }
  const std::vector<OriginatorSpec>& population() const noexcept { return population_; }

  std::span<Authority> authorities() noexcept { return authorities_; }
  Authority& authority(std::size_t i) noexcept { return authorities_[i]; }

  /// Ground truth: originator address -> true class.  (An address reused
  /// by successive originators keeps the last class; collisions are rare
  /// and logged.)
  const std::unordered_map<net::IPv4Addr, core::AppClass>& truth() const noexcept {
    return truth_;
  }

  /// The specs active at any point inside [t0, t1).
  std::vector<const OriginatorSpec*> active_in(util::SimTime t0, util::SimTime t1) const;

 private:
  ScenarioConfig config_;
  std::unique_ptr<AddressPlan> plan_;
  std::unique_ptr<NamingModel> naming_;
  std::unique_ptr<QuerierPopulation> queriers_;
  std::vector<Authority> authorities_;
  std::unique_ptr<TrafficEngine> engine_;
  std::vector<OriginatorSpec> population_;
  std::unordered_map<net::IPv4Addr, core::AppClass> truth_;
};

/// ---- preset configurations ----
/// `scale` in (0, 1] multiplies class populations (and the address plan's
/// site count) so the same scenario shape runs at test or bench size.

ScenarioConfig jp_ditl_config(std::uint64_t seed, double scale = 1.0);
ScenarioConfig b_post_ditl_config(std::uint64_t seed, double scale = 1.0);
ScenarioConfig m_ditl_config(std::uint64_t seed, double scale = 1.0);
ScenarioConfig m_sampled_config(std::uint64_t seed, std::size_t weeks, double scale = 1.0);
ScenarioConfig b_multi_year_config(std::uint64_t seed, std::size_t weeks, double scale = 1.0);

/// Root-selection probabilities per region for the two modelled roots.
AuthorityConfig b_root_authority();
AuthorityConfig m_root_authority(std::uint32_t sample_1_in = 1);
AuthorityConfig national_authority(netdb::CountryCode cc);

}  // namespace dnsbs::sim
