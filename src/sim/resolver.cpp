#include "sim/resolver.hpp"

namespace dnsbs::sim {

ResolverSim::ResolverSim(const NamingModel& naming, ResolverSimConfig config,
                         std::uint64_t seed)
    : naming_(naming), config_(config), rng_(util::Rng::stream(seed, 0x2e50)) {}

ResolverBusyness ResolverSim::busyness_of(net::IPv4Addr querier) const {
  switch (naming_.role_of(querier)) {
    case HostRole::kIspResolver:
    case HostRole::kOpenResolver:
      return ResolverBusyness::kBusy;
    case HostRole::kSiteResolver:
    case HostRole::kMailServer:
      // MTAs resolve senders continuously; their caches stay warm, which
      // is why spam backscatter attenuates harder toward the root than
      // scan or CDN backscatter (paper Tables VII vs VIII).
      return ResolverBusyness::kSmall;
    default:
      return ResolverBusyness::kSelf;
  }
}

ResolveOutcome ResolverSim::resolve(net::IPv4Addr querier, net::IPv4Addr originator,
                                    util::SimTime now) {
  ResolveOutcome outcome;
  auto [it, created] = caches_.try_emplace(
      querier, dns::CacheSim(config_.max_cache_entries_per_resolver));
  dns::CacheSim& cache = it->second;

  const dns::DnsName qname = dns::reverse_name(originator);

  // TTL violators re-resolve on every trigger; stable per querier.
  const std::uint64_t vhash =
      (static_cast<std::uint64_t>(querier.value()) * 0x9e3779b97f4a7c15ULL) >> 11;
  const bool violator =
      static_cast<double>(vhash) * 0x1.0p-53 < config_.ttl_violator_fraction;
  const std::uint64_t qhash =
      (static_cast<std::uint64_t>(querier.value()) * 0xbf58476d1ce4e5b9ULL) >> 11;
  outcome.qname_minimized =
      static_cast<double>(qhash) * 0x1.0p-53 < config_.qname_min_fraction;

  // 1. The answer itself.
  const dns::CacheResult ptr_hit =
      violator ? dns::CacheResult::kMiss : cache.lookup(qname, dns::QType::kPTR, now);
  if (ptr_hit != dns::CacheResult::kMiss) {
    outcome.served_from_cache = true;
    outcome.rcode = ptr_hit == dns::CacheResult::kHitNegative ? dns::RCode::kNXDomain
                                                              : dns::RCode::kNoError;
    return outcome;
  }

  // 2. Walk the delegation chain bottom-up: whichever NS entries are cold
  //    determine which authorities hear this query.
  const dns::DnsName zone24 = dns::reverse_zone(originator, dns::ReverseZoneLevel::kSlash24);
  const bool zone24_cold =
      cache.lookup(zone24, dns::QType::kNS, now) == dns::CacheResult::kMiss;
  if (zone24_cold || violator) {
    outcome.reached_national = true;
    cache.insert_positive(zone24, dns::QType::kNS, config_.ns_ttl_slash24, now);

    const dns::DnsName zone8 = dns::reverse_zone(originator, dns::ReverseZoneLevel::kSlash8);
    if (cache.lookup(zone8, dns::QType::kNS, now) == dns::CacheResult::kMiss) {
      // Background traffic (which we do not simulate) keeps the top of the
      // reverse tree warm for real resolvers; apply the busyness model.
      double warm = config_.warm8_self;
      switch (busyness_of(querier)) {
        case ResolverBusyness::kBusy: warm = config_.warm8_busy; break;
        case ResolverBusyness::kSmall: warm = config_.warm8_small; break;
        case ResolverBusyness::kSelf: warm = config_.warm8_self; break;
      }
      if (!rng_.chance(warm)) outcome.reached_root = true;
      cache.insert_positive(zone8, dns::QType::kNS, config_.ns_ttl_slash8, now);
    }
  }

  // 3. Final authority answers (or fails).
  outcome.reached_final = true;
  const core::QuerierInfo identity = naming_.resolve(originator);
  switch (identity.status) {
    case core::ResolveStatus::kOk: {
      outcome.rcode = dns::RCode::kNoError;
      std::uint32_t ttl = naming_.ptr_ttl(originator);
      if (config_.ptr_ttl_hint) {
        if (const auto hint = config_.ptr_ttl_hint(originator)) ttl = *hint;
      }
      cache.insert_positive(qname, dns::QType::kPTR, ttl, now);
      break;
    }
    case core::ResolveStatus::kNxDomain:
      outcome.rcode = dns::RCode::kNXDomain;
      cache.insert_negative(qname, dns::QType::kPTR, naming_.negative_ttl(originator), now);
      break;
    case core::ResolveStatus::kUnreachable:
      outcome.rcode = dns::RCode::kServFail;
      cache.insert_negative(qname, dns::QType::kPTR, config_.servfail_ttl, now);
      break;
  }
  return outcome;
}

dns::CacheSim::Stats ResolverSim::total_stats() const {
  dns::CacheSim::Stats total;
  for (const auto& [addr, cache] : caches_) {
    const auto& s = cache.stats();
    total.lookups += s.lookups;
    total.hits_positive += s.hits_positive;
    total.hits_negative += s.hits_negative;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.expired_evictions += s.expired_evictions;
  }
  return total;
}

}  // namespace dnsbs::sim
