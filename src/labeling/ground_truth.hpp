// Labeled ground truth: the curated originator -> application-class map
// used to train and validate the classifier (paper §IV-B, Appendix A).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/feature_vector.hpp"
#include "core/taxonomy.hpp"
#include "ml/dataset.hpp"
#include "net/ipv4.hpp"

namespace dnsbs::labeling {

class GroundTruth {
 public:
  void add(net::IPv4Addr originator, core::AppClass cls) { labels_[originator] = cls; }
  void remove(net::IPv4Addr originator) { labels_.erase(originator); }

  std::optional<core::AppClass> label_of(net::IPv4Addr originator) const {
    const auto it = labels_.find(originator);
    if (it == labels_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const noexcept { return labels_.size(); }
  bool empty() const noexcept { return labels_.empty(); }

  /// Examples per class (paper Table VI rows).
  std::array<std::size_t, core::kAppClassCount> class_counts() const;

  const std::unordered_map<net::IPv4Addr, core::AppClass>& labels() const noexcept {
    return labels_;
  }

  /// Joins labels with extracted feature vectors into a training dataset;
  /// feature vectors without a label are skipped.  Returns the dataset and
  /// the addresses that were used, in row order.
  std::pair<ml::Dataset, std::vector<net::IPv4Addr>> join(
      std::span<const core::FeatureVector> features) const;

 private:
  std::unordered_map<net::IPv4Addr, core::AppClass> labels_;
};

}  // namespace dnsbs::labeling
