#include "labeling/darknet.hpp"

namespace dnsbs::labeling {

void Darknet::on_touch(util::SimTime time, const sim::OriginatorSpec& originator,
                       net::IPv4Addr target) {
  (void)time;
  for (const net::Prefix& prefix : prefixes_) {
    if (prefix.contains(target)) {
      hits_[originator.address].insert(target.value());
      ++packets_;
      return;
    }
  }
}

std::size_t Darknet::addresses_hit_by(net::IPv4Addr source) const {
  const auto it = hits_.find(source);
  return it == hits_.end() ? 0 : it->second.size();
}

std::vector<net::IPv4Addr> Darknet::sources() const {
  std::vector<net::IPv4Addr> out;
  out.reserve(hits_.size());
  for (const auto& [source, targets] : hits_) out.push_back(source);
  return out;
}

std::vector<net::Prefix> default_darknet_prefixes() {
  // The simulator reserves these blocks as never-allocated dark space.
  return sim::darknet_prefixes();
}

}  // namespace dnsbs::labeling
