// Darknet sensor: a block of unoccupied address space whose incoming
// packets are all unsolicited.  The paper confirms scanners with "two
// darknets (one a /17 and the other a /18 prefix)" (Appendix A) and uses
// darknet hits as the DarkIP column of Tables VII/VIII.
//
// Implemented as a TrafficObserver on the simulator's raw touches:
// scanners picking random 32-bit targets naturally land in the darknet
// prefixes, exactly as real random scanning does.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/traffic_engine.hpp"

namespace dnsbs::labeling {

class Darknet final : public sim::TrafficObserver {
 public:
  /// Monitors the given unallocated prefixes (they must not overlap the
  /// address plan's allocated sites; scenario presets reserve them).
  explicit Darknet(std::vector<net::Prefix> prefixes)
      : prefixes_(std::move(prefixes)) {}

  void on_touch(util::SimTime time, const sim::OriginatorSpec& originator,
                net::IPv4Addr target) override;

  /// Distinct darknet addresses hit by this source (the DarkIP column).
  std::size_t addresses_hit_by(net::IPv4Addr source) const;

  /// The paper's confirmation rule: a confirmed scanner touched more than
  /// `threshold` distinct darknet addresses.
  bool confirms_scanner(net::IPv4Addr source, std::size_t threshold = 16) const {
    return addresses_hit_by(source) > threshold;
  }

  /// All sources that hit the darknet at all.
  std::vector<net::IPv4Addr> sources() const;

  std::uint64_t packets() const noexcept { return packets_; }

 private:
  std::vector<net::Prefix> prefixes_;
  std::unordered_map<net::IPv4Addr, std::unordered_set<std::uint32_t>> hits_;
  std::uint64_t packets_ = 0;
};

/// Darknet prefixes that the scenario presets leave unallocated: the top
/// of 127/8 is never assigned by the address plan (127 is skipped), so we
/// carve the paper's /17 + /18 from it.
std::vector<net::Prefix> default_darknet_prefixes();

}  // namespace dnsbs::labeling
