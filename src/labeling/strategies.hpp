// Training-over-time strategies (paper §III-E and §V, Figure 7).
//
// The world drifts: labeled examples stop acting, features shift, and the
// classifier's boundary goes stale.  Three strategies are compared:
//
//   train-once     fit on the curation window, never update
//   train-daily    keep the labeled set, refit on each window's fresh
//                  feature vectors
//   auto-grow      feed each window's classification output in as the
//                  next window's labels (shown by the paper to collapse)
//
// Each strategy is evaluated per window by the f-score on re-appearing
// labeled examples, reproducing Figure 7's time series.
#pragma once

#include <vector>

#include "core/feature_vector.hpp"
#include "labeling/blacklist.hpp"
#include "labeling/darknet.hpp"
#include "labeling/ground_truth.hpp"
#include "ml/forest.hpp"
#include "util/time.hpp"

namespace dnsbs::labeling {

/// One observation window's sensor output.
struct WindowObservation {
  util::SimTime start{};
  util::SimTime end{};
  std::vector<core::FeatureVector> features;
};

/// Per-window evaluation result.
struct StrategyPoint {
  std::size_t window = 0;
  double f1 = 0.0;
  double accuracy = 0.0;
  std::size_t examples = 0;  ///< labeled examples re-appearing this window
  bool trained = false;      ///< false when training was impossible
  /// auto-grow only: fraction of the grown training labels that disagree
  /// with ground truth at this window (the paper's "about 30% of training
  /// input ... is not correct"); 0 elsewhere.
  double label_error = 0.0;
};

struct StrategyConfig {
  /// Minimum usable training set: classes present and examples per class.
  std::size_t min_classes = 2;
  std::size_t min_per_class = 3;
  /// Train fraction for the within-window split used by train-daily.
  double train_fraction = 0.6;
  ml::ForestConfig forest;
  std::uint64_t seed = 7;
};

std::vector<StrategyPoint> evaluate_train_once(
    std::span<const WindowObservation> windows, std::size_t curation_window,
    const GroundTruth& labels, const StrategyConfig& config = {});

std::vector<StrategyPoint> evaluate_train_daily(
    std::span<const WindowObservation> windows, const GroundTruth& labels,
    const StrategyConfig& config = {});

/// `truth` (optional) is the oracle originator->class map used to measure
/// grown-label error; the simulator knows it, a real deployment does not.
std::vector<StrategyPoint> evaluate_auto_grow(
    std::span<const WindowObservation> windows, std::size_t curation_window,
    const GroundTruth& labels, const StrategyConfig& config = {},
    const std::unordered_map<net::IPv4Addr, core::AppClass>* truth = nullptr);

/// The paper's proposed fix for auto-grow (§V-D: "check proposed new
/// labels against external sources (for example, verifying newly
/// identified spammers appear in Spamhaus' reputation system)"): grown
/// malicious labels are admitted only with corroborating blacklist or
/// darknet evidence, damping the error compounding.
std::vector<StrategyPoint> evaluate_auto_grow_verified(
    std::span<const WindowObservation> windows, std::size_t curation_window,
    const GroundTruth& labels, const BlacklistSet& blacklist, const Darknet& darknet,
    const StrategyConfig& config = {},
    const std::unordered_map<net::IPv4Addr, core::AppClass>* truth = nullptr);

/// How many labeled examples of each class re-appear (are detected) in a
/// window — the data behind Figures 5 and 6.
std::array<std::size_t, core::kAppClassCount> reappearing_counts(
    const WindowObservation& window, const GroundTruth& labels);

}  // namespace dnsbs::labeling
