#include "labeling/strategies.hpp"

#include <functional>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace dnsbs::labeling {

namespace {

bool trainable(const ml::Dataset& data, const StrategyConfig& config) {
  std::size_t populated = 0;
  for (const std::size_t c : data.class_counts()) {
    if (c >= config.min_per_class) ++populated;
  }
  return populated >= config.min_classes;
}

ml::RandomForest make_forest(const StrategyConfig& config, std::uint64_t salt) {
  ml::ForestConfig fc = config.forest;
  fc.seed = config.seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return ml::RandomForest(fc);
}

/// f-score of `model` on the labeled examples present in `window`.
StrategyPoint score_window(const ml::Classifier& model, const WindowObservation& window,
                           const GroundTruth& labels, std::size_t index) {
  StrategyPoint point;
  point.window = index;
  ml::ConfusionMatrix cm(core::kAppClassCount);
  for (const auto& fv : window.features) {
    const auto label = labels.label_of(fv.originator);
    if (!label) continue;
    ++point.examples;
    cm.add(static_cast<std::size_t>(*label), model.predict(fv.row()));
  }
  if (point.examples > 0) {
    const ml::Metrics m = ml::compute_metrics(cm);
    point.f1 = m.f1;
    point.accuracy = m.accuracy;
    point.trained = true;
  }
  return point;
}

}  // namespace

std::array<std::size_t, core::kAppClassCount> reappearing_counts(
    const WindowObservation& window, const GroundTruth& labels) {
  std::array<std::size_t, core::kAppClassCount> counts{};
  for (const auto& fv : window.features) {
    if (const auto label = labels.label_of(fv.originator)) {
      ++counts[static_cast<std::size_t>(*label)];
    }
  }
  return counts;
}

std::vector<StrategyPoint> evaluate_train_once(
    std::span<const WindowObservation> windows, std::size_t curation_window,
    const GroundTruth& labels, const StrategyConfig& config) {
  std::vector<StrategyPoint> out;
  if (curation_window >= windows.size()) return out;
  auto [train_data, used] = labels.join(windows[curation_window].features);
  if (!trainable(train_data, config)) {
    for (std::size_t w = 0; w < windows.size(); ++w) out.push_back({w, 0, 0, 0, false});
    return out;
  }
  ml::RandomForest model = make_forest(config, 1);
  model.fit(train_data);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    out.push_back(score_window(model, windows[w], labels, w));
  }
  return out;
}

std::vector<StrategyPoint> evaluate_train_daily(
    std::span<const WindowObservation> windows, const GroundTruth& labels,
    const StrategyConfig& config) {
  std::vector<StrategyPoint> out;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    auto [data, used] = labels.join(windows[w].features);
    StrategyPoint point;
    point.window = w;
    point.examples = data.size();
    if (!trainable(data, config)) {
      out.push_back(point);
      continue;
    }
    // Fresh features, fixed labels.  Following the paper's §V-C protocol,
    // the same day's re-appearing labeled examples serve as both the
    // (re)training input and the validation set — which flatters this
    // strategy exactly as the paper's Figure 7 curve is flattered; use
    // crossval on one window for an unbiased single-window estimate.
    ml::RandomForest model = make_forest(config, w + 2);
    model.fit(data);
    out.push_back(score_window(model, windows[w], labels, w));
  }
  return out;
}

namespace {

/// Shared auto-grow chain: `admit` decides whether a predicted label may
/// enter the next window's training set (nullopt = reject the example).
using LabelFilter =
    std::function<std::optional<core::AppClass>(net::IPv4Addr, core::AppClass)>;

std::vector<StrategyPoint> auto_grow_impl(
    std::span<const WindowObservation> windows, std::size_t curation_window,
    const GroundTruth& labels, const StrategyConfig& config,
    const std::unordered_map<net::IPv4Addr, core::AppClass>* truth,
    const LabelFilter& admit) {
  std::vector<StrategyPoint> out(windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) out[w].window = w;
  if (curation_window >= windows.size()) return out;

  // The label set evolves forward from curation: the model trained on
  // window w's (features, evolving labels) both scores the *next* window
  // and relabels it for the window after.  Errors therefore compound —
  // a mislabeled example trains the next model, which mislabels more
  // (the paper's "classification error quickly accumulates over days").
  GroundTruth evolving = labels;
  for (std::size_t w = curation_window; w < windows.size(); ++w) {
    auto [data, used] = evolving.join(windows[w].features);
    out[w].examples = data.size();
    if (truth && !evolving.empty()) {
      std::size_t wrong = 0, checked = 0;
      for (const auto& [addr, cls] : evolving.labels()) {
        const auto it = truth->find(addr);
        if (it == truth->end()) continue;
        ++checked;
        if (it->second != cls) ++wrong;
      }
      if (checked > 0) {
        out[w].label_error = static_cast<double>(wrong) / static_cast<double>(checked);
      }
    }
    if (!trainable(data, config)) {
      // Too few classes survive in the grown labels: the strategy has
      // collapsed and cannot build a classifier (f1 stays 0).
      evolving = GroundTruth{};
      continue;
    }
    ml::RandomForest model = make_forest(config, w + 1000);
    model.fit(data);

    // Forward evaluation: yesterday's grown model against today's
    // re-appearing curated examples (never the rows it was fit on).
    if (w + 1 < windows.size()) {
      const double err = out[w + 1].label_error;
      out[w + 1] = score_window(model, windows[w + 1], labels, w + 1);
      out[w + 1].label_error = err;
    }
    // The curation window itself scores as self-trained (deceptively high,
    // as the paper notes for curation days).
    if (w == curation_window) {
      const double err = out[w].label_error;
      out[w] = score_window(model, windows[w], labels, w);
      out[w].label_error = err;
    }

    // Grow: the next window's labels are this model's predictions for
    // every originator detected there, gated by the admission filter.
    if (w + 1 < windows.size()) {
      GroundTruth next;
      for (const auto& fv : windows[w + 1].features) {
        const auto predicted = static_cast<core::AppClass>(model.predict(fv.row()));
        if (const auto admitted = admit(fv.originator, predicted)) {
          next.add(fv.originator, *admitted);
        }
      }
      evolving = std::move(next);
    }
  }
  return out;
}

}  // namespace

std::vector<StrategyPoint> evaluate_auto_grow(
    std::span<const WindowObservation> windows, std::size_t curation_window,
    const GroundTruth& labels, const StrategyConfig& config,
    const std::unordered_map<net::IPv4Addr, core::AppClass>* truth) {
  return auto_grow_impl(windows, curation_window, labels, config, truth,
                        [](net::IPv4Addr, core::AppClass cls) {
                          return std::optional<core::AppClass>(cls);
                        });
}

std::vector<StrategyPoint> evaluate_auto_grow_verified(
    std::span<const WindowObservation> windows, std::size_t curation_window,
    const GroundTruth& labels, const BlacklistSet& blacklist, const Darknet& darknet,
    const StrategyConfig& config,
    const std::unordered_map<net::IPv4Addr, core::AppClass>* truth) {
  return auto_grow_impl(
      windows, curation_window, labels, config, truth,
      [&blacklist, &darknet](net::IPv4Addr addr,
                             core::AppClass cls) -> std::optional<core::AppClass> {
        if (!core::is_malicious(cls)) return cls;
        // Newly-identified malicious labels need external corroboration
        // (Spamhaus-style reputation or darknet sightings).
        if (cls == core::AppClass::kSpam && blacklist.spam_listings(addr) > 0) return cls;
        if (cls == core::AppClass::kScan &&
            (darknet.confirms_scanner(addr, 4) || blacklist.other_listings(addr) > 0)) {
          return cls;
        }
        return std::nullopt;
      });
}

}  // namespace dnsbs::labeling
