#include "labeling/ground_truth.hpp"

namespace dnsbs::labeling {

std::array<std::size_t, core::kAppClassCount> GroundTruth::class_counts() const {
  std::array<std::size_t, core::kAppClassCount> counts{};
  for (const auto& [addr, cls] : labels_) ++counts[static_cast<std::size_t>(cls)];
  return counts;
}

std::pair<ml::Dataset, std::vector<net::IPv4Addr>> GroundTruth::join(
    std::span<const core::FeatureVector> features) const {
  ml::Dataset dataset = core::make_dataset();
  std::vector<net::IPv4Addr> used;
  for (const auto& fv : features) {
    const auto label = label_of(fv.originator);
    if (!label) continue;
    dataset.add(fv.row(), static_cast<std::size_t>(*label));
    used.push_back(fv.originator);
  }
  return {std::move(dataset), std::move(used)};
}

}  // namespace dnsbs::labeling
