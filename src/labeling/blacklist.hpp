// DNSBL simulation: the external reputation evidence the paper uses to
// confirm spammers (Appendix A: "9 organizations ... we consider only the
// spam portion of blacklists").
//
// Real blacklists are imperfect: they list most (not all) active spammers
// after a detection delay, list some scanners/abusers in their "other"
// sections, and contain a little noise.  BlacklistSet models N independent
// list operators with per-operator detection probabilities, so the
// "BLS/BLO" columns of Tables VII/VIII have realistic disagreement.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/taxonomy.hpp"
#include "net/ipv4.hpp"
#include "sim/originator.hpp"
#include "util/rng.hpp"

namespace dnsbs::labeling {

struct BlacklistConfig {
  std::size_t operators = 9;           ///< independent DNSBL providers
  double spam_detection_prob = 0.55;   ///< P(one operator lists an active spammer)
  double scan_other_prob = 0.25;       ///< P(operator lists a scanner in "other")
  double spam_other_prob = 0.30;       ///< spammers also do other abuse
  double false_listing_prob = 0.004;   ///< benign originators wrongly listed
};

class BlacklistSet {
 public:
  /// Builds listings from the true population (the sim plays the role of
  /// the abuse ecosystem the real lists observe).
  static BlacklistSet build(std::span<const sim::OriginatorSpec> population,
                            const BlacklistConfig& config, util::Rng& rng);

  /// Number of operators listing this address as a spam source (the BLS
  /// column of Table VII).
  std::uint32_t spam_listings(net::IPv4Addr addr) const;

  /// Listings in non-spam ("other malicious") sections (the BLO column).
  std::uint32_t other_listings(net::IPv4Addr addr) const;

  /// True if any operator lists the address at all.
  bool listed(net::IPv4Addr addr) const {
    return spam_listings(addr) > 0 || other_listings(addr) > 0;
  }

  std::size_t listed_addresses() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint32_t spam = 0;
    std::uint32_t other = 0;
  };
  std::unordered_map<net::IPv4Addr, Entry> entries_;
};

}  // namespace dnsbs::labeling
