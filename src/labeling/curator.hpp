// Expert curation simulation (paper §III-E, §IV-B).
//
// The paper's human expert intersects external evidence (blacklists,
// darknets, crawl lists) with the top originators by querier count, then
// verifies each candidate manually.  Curator reproduces that process
// against the simulator's known truth: it labels only originators that
// were actually *detected* in the window (so the labeled set reflects the
// vantage point, as the paper stresses), requires corroborating evidence
// for malicious classes, and enforces per-class minimums/caps.
#pragma once

#include "core/feature_vector.hpp"
#include "labeling/blacklist.hpp"
#include "labeling/darknet.hpp"
#include "labeling/ground_truth.hpp"
#include "sim/scenario.hpp"

namespace dnsbs::labeling {

struct CuratorConfig {
  /// Per-class cap on labeled examples (the paper labels 200-700 total).
  std::size_t max_per_class = 60;
  /// Expert accuracy: probability a curated label is correct (manual
  /// verification is good but not perfect).
  double label_accuracy = 0.97;
  /// Malicious examples are only admitted with external evidence
  /// (blacklist listing or darknet confirmation) — matching Appendix A.
  bool require_evidence_for_malicious = true;
};

class Curator {
 public:
  Curator(const sim::Scenario& scenario, const BlacklistSet& blacklist,
          const Darknet& darknet, CuratorConfig config, std::uint64_t seed);

  /// Curates a labeled set from the originators detected in a window
  /// (their extracted feature vectors).  Wrong-class labels occur at
  /// (1 - label_accuracy), as real curation error would.
  GroundTruth curate(std::span<const core::FeatureVector> detected);

 private:
  const sim::Scenario& scenario_;
  const BlacklistSet& blacklist_;
  const Darknet& darknet_;
  CuratorConfig config_;
  util::Rng rng_;
};

}  // namespace dnsbs::labeling
