#include "labeling/blacklist.hpp"

namespace dnsbs::labeling {

BlacklistSet BlacklistSet::build(std::span<const sim::OriginatorSpec> population,
                                 const BlacklistConfig& config, util::Rng& rng) {
  BlacklistSet set;
  for (const auto& spec : population) {
    Entry entry;
    for (std::size_t op = 0; op < config.operators; ++op) {
      switch (spec.cls) {
        case core::AppClass::kSpam:
          if (rng.chance(config.spam_detection_prob)) ++entry.spam;
          if (rng.chance(config.spam_other_prob)) ++entry.other;
          break;
        case core::AppClass::kScan:
          if (rng.chance(config.scan_other_prob)) ++entry.other;
          break;
        default:
          if (rng.chance(config.false_listing_prob)) {
            rng.chance(0.5) ? ++entry.spam : ++entry.other;
          }
          break;
      }
    }
    if (entry.spam > 0 || entry.other > 0) {
      auto& existing = set.entries_[spec.address];
      existing.spam += entry.spam;
      existing.other += entry.other;
    }
  }
  return set;
}

std::uint32_t BlacklistSet::spam_listings(net::IPv4Addr addr) const {
  const auto it = entries_.find(addr);
  return it == entries_.end() ? 0 : it->second.spam;
}

std::uint32_t BlacklistSet::other_listings(net::IPv4Addr addr) const {
  const auto it = entries_.find(addr);
  return it == entries_.end() ? 0 : it->second.other;
}

}  // namespace dnsbs::labeling
