#include "labeling/curator.hpp"

namespace dnsbs::labeling {

Curator::Curator(const sim::Scenario& scenario, const BlacklistSet& blacklist,
                 const Darknet& darknet, CuratorConfig config, std::uint64_t seed)
    : scenario_(scenario),
      blacklist_(blacklist),
      darknet_(darknet),
      config_(config),
      rng_(util::Rng::stream(seed, 0xc42a)) {}

GroundTruth Curator::curate(std::span<const core::FeatureVector> detected) {
  GroundTruth out;
  std::array<std::size_t, core::kAppClassCount> taken{};
  const auto& truth = scenario_.truth();

  // Detected features arrive footprint-descending (the sensor sorts), so
  // curation naturally prefers the most prominent originators, as the
  // paper's top-10000 intersection does.
  for (const auto& fv : detected) {
    const auto it = truth.find(fv.originator);
    if (it == truth.end()) continue;  // not an activity we injected
    const core::AppClass true_class = it->second;
    auto& count = taken[static_cast<std::size_t>(true_class)];
    if (count >= config_.max_per_class) continue;

    if (config_.require_evidence_for_malicious && core::is_malicious(true_class)) {
      const bool listed = blacklist_.listed(fv.originator);
      const bool confirmed = darknet_.confirms_scanner(fv.originator, 4);
      if (!listed && !confirmed) continue;
    }

    core::AppClass label = true_class;
    if (!rng_.chance(config_.label_accuracy)) {
      // Curation mistake: a plausible adjacent class.
      label = static_cast<core::AppClass>(rng_.below(core::kAppClassCount));
    }
    out.add(fv.originator, label);
    ++count;
  }
  return out;
}

}  // namespace dnsbs::labeling
