#include "net/ipv4.hpp"

#include "util/strings.hpp"

namespace dnsbs::net {

std::optional<IPv4Addr> IPv4Addr::parse(std::string_view text) noexcept {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    std::uint64_t octet = 0;
    if (!util::parse_u64(part, octet) || octet > 255 || part.size() > 3) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return IPv4Addr(value);
}

std::string IPv4Addr::to_string() const {
  return util::format("%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv4Addr::parse(text.substr(0, slash));
  std::uint64_t len = 0;
  if (!addr || !util::parse_u64(text.substr(slash + 1), len) || len > 32) return std::nullopt;
  return Prefix(*addr, static_cast<int>(len));
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace dnsbs::net
