#include "net/ipv4.hpp"

#include "util/strings.hpp"

namespace dnsbs::net {

std::optional<IPv4Addr> IPv4Addr::parse(std::string_view text) noexcept {
  // Single forward scan, no intermediate field vector: this sits on the
  // log-replay hot path (three address parses per record line).
  // Accepts exactly 4 dot-separated runs of 1-3 digits, each <= 255.
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int field = 0; field < 4; ++field) {
    if (field > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    const std::size_t start = pos;
    std::uint32_t octet = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      if (pos - start == 3) return std::nullopt;  // >3 digits
      octet = octet * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      ++pos;
    }
    if (pos == start || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  if (pos != text.size()) return std::nullopt;  // trailing garbage
  return IPv4Addr(value);
}

std::string IPv4Addr::to_string() const {
  return util::format("%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv4Addr::parse(text.substr(0, slash));
  std::uint64_t len = 0;
  if (!addr || !util::parse_u64(text.substr(slash + 1), len) || len > 32) return std::nullopt;
  return Prefix(*addr, static_cast<int>(len));
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace dnsbs::net
