// Minimal HTTP/1.1 GET responder support on top of TcpStream — just
// enough surface for the daemon's scrape endpoints (/metrics, /healthz,
// /windows).  Deliberately not a web server: one request per connection,
// request bodies ignored, responses always `Connection: close` with an
// exact Content-Length so scrapers never block on a keep-alive.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace dnsbs::net {

struct HttpRequest {
  std::string method;   ///< "GET", "HEAD", ...
  std::string path;     ///< target without the query string
  std::string query;    ///< after '?', empty when absent
  std::string version;  ///< "HTTP/1.1"
};

/// True when a line read off a fresh connection looks like an HTTP
/// request line ("GET /x HTTP/1.1") rather than a control-protocol verb.
/// The daemon's status socket speaks both; this is the demultiplexer.
bool looks_like_http_request(std::string_view line);

/// Parses `request_line` and drains header lines from `stream` until the
/// blank separator (headers themselves are ignored).  nullopt on a
/// malformed request line or a peer that never finishes its headers.
std::optional<HttpRequest> read_http_request(TcpStream& stream,
                                             const std::string& request_line,
                                             int timeout_ms);

/// Value of `name` in a query string ("n=5&x=y"), or nullopt.
std::optional<std::string> query_param(std::string_view query, std::string_view name);

/// Builds a complete response: status line, Content-Type, exact
/// Content-Length, Connection: close, then the body.
std::string http_response(int status, std::string_view content_type,
                          std::string_view body);

/// Canonical reason phrase ("OK", "Not Found", ...).
std::string_view http_reason(int status);

}  // namespace dnsbs::net
