// Thin RAII wrappers over POSIX UDP/TCP sockets for the streaming daemon.
//
// Scope is deliberately small: IPv4 only (the sensor pipeline is IPv4),
// blocking IO with poll()-based timeouts so intake threads can notice a
// stop flag, and no buffering cleverness — the daemon's bounded queue is
// the buffer.  Errors surface as false/std::nullopt plus errno text via
// last_error(); nothing throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"

namespace dnsbs::net {

/// Owns a file descriptor; moves transfer, destruction closes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

 protected:
  int fd_ = -1;
};

/// Source of one received datagram.
struct DatagramSource {
  IPv4Addr addr;
  std::uint16_t port = 0;
};

class UdpSocket : public Socket {
 public:
  /// Binds to `bind_addr:port` (port 0 = ephemeral).  Sets a generous
  /// SO_RCVBUF — the kernel queue absorbs bursts while the intake thread
  /// drains into the daemon's bounded queue.
  bool bind(std::string_view bind_addr, std::uint16_t port);
  /// The actually-bound port (resolves ephemeral binds).
  std::uint16_t local_port() const;

  bool send_to(std::string_view host, std::uint16_t port, const void* data,
               std::size_t len);
  /// Waits up to `timeout_ms` for a datagram; returns its length (0 is a
  /// valid empty datagram) or nullopt on timeout/error.  `source`, when
  /// non-null, receives the sender address.
  std::optional<std::size_t> recv_from(void* buf, std::size_t cap, int timeout_ms,
                                       DatagramSource* source = nullptr);

  const std::string& last_error() const noexcept { return error_; }

 private:
  std::string error_;
};

class TcpStream : public Socket {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) noexcept : Socket(fd) {}

  static std::optional<TcpStream> connect(std::string_view host, std::uint16_t port,
                                          int timeout_ms = 5000);

  bool write_all(const void* data, std::size_t len);
  /// Reads exactly `len` bytes, waiting up to `timeout_ms` between chunks;
  /// false on EOF/timeout/error.
  bool read_exact(void* buf, std::size_t len, int timeout_ms);
  /// Reads up to and including '\n' (returned without it, CR stripped);
  /// nullopt on EOF/timeout before a full line.
  std::optional<std::string> read_line(int timeout_ms, std::size_t max_len = 4096);
};

class TcpListener : public Socket {
 public:
  bool listen(std::string_view bind_addr, std::uint16_t port, int backlog = 16);
  std::uint16_t local_port() const;
  /// Waits up to `timeout_ms` for a connection; nullopt on timeout/error.
  std::optional<TcpStream> accept(int timeout_ms);

  const std::string& last_error() const noexcept { return error_; }

 private:
  std::string error_;
};

}  // namespace dnsbs::net
