// IPv4 address and prefix value types.
//
// Addresses are the join point of the whole system: originators and queriers
// are addresses, the geo/AS databases map prefixes, the reverse-DNS codec
// turns addresses into in-addr.arpa names, and the dynamic features bucket
// queriers by /8 and /24.  Keeping them as a strong value type (not raw
// uint32) prevents the classic host/network byte-order and prefix/host
// confusions.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dnsbs::net {

/// An IPv4 address held in host byte order.
class IPv4Addr {
 public:
  constexpr IPv4Addr() noexcept = default;
  explicit constexpr IPv4Addr(std::uint32_t host_order) noexcept : value_(host_order) {}

  static constexpr IPv4Addr from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                        std::uint8_t d) noexcept {
    return IPv4Addr((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad "a.b.c.d"; rejects out-of-range octets, empty
  /// fields, and trailing garbage.
  static std::optional<IPv4Addr> parse(std::string_view text) noexcept;

  constexpr std::uint32_t value() const noexcept { return value_; }

  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// The /8 bucket (first octet); geographic allocation granularity in the
  /// paper's global-entropy feature.
  constexpr std::uint32_t slash8() const noexcept { return value_ >> 24; }

  /// The /16 bucket.
  constexpr std::uint32_t slash16() const noexcept { return value_ >> 16; }

  /// The /24 bucket; the paper's local-entropy and scanner-team granularity.
  constexpr std::uint32_t slash24() const noexcept { return value_ >> 8; }

  std::string to_string() const;

  constexpr auto operator<=>(const IPv4Addr&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: address + mask length.  The network bits below the mask
/// are canonicalized to zero on construction.
class Prefix {
 public:
  constexpr Prefix() noexcept = default;

  /// Canonicalizes: host bits are cleared.  len must be 0..32.
  constexpr Prefix(IPv4Addr addr, int len) noexcept
      : addr_(IPv4Addr(len == 0 ? 0 : (addr.value() & mask_for(len)))), len_(len) {}

  /// Parses "a.b.c.d/len".
  static std::optional<Prefix> parse(std::string_view text) noexcept;

  constexpr IPv4Addr address() const noexcept { return addr_; }
  constexpr int length() const noexcept { return len_; }

  constexpr std::uint32_t mask() const noexcept { return len_ == 0 ? 0 : mask_for(len_); }

  constexpr bool contains(IPv4Addr a) const noexcept {
    return (a.value() & mask()) == addr_.value();
  }

  constexpr bool contains(const Prefix& other) const noexcept {
    return other.len_ >= len_ && contains(other.addr_);
  }

  /// Number of addresses covered (2^(32-len)).
  constexpr std::uint64_t size() const noexcept { return 1ULL << (32 - len_); }

  /// The i-th address inside the prefix (i < size()).
  constexpr IPv4Addr at(std::uint64_t i) const noexcept {
    return IPv4Addr(addr_.value() + static_cast<std::uint32_t>(i));
  }

  std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const noexcept = default;

 private:
  static constexpr std::uint32_t mask_for(int len) noexcept {
    return len == 0 ? 0 : (~std::uint32_t{0} << (32 - len));
  }

  IPv4Addr addr_{};
  int len_ = 0;
};

}  // namespace dnsbs::net

template <>
struct std::hash<dnsbs::net::IPv4Addr> {
  std::size_t operator()(const dnsbs::net::IPv4Addr& a) const noexcept {
    // SplitMix64 finalizer: full avalanche, so the clustered address
    // ranges the simulator allocates (and real scanners occupy) spread
    // evenly across unordered_map buckets, and shard assignment
    // (hash % W) stays balanced.  The single multiply used previously
    // left the low bits of adjacent addresses correlated.
    std::uint64_t z = a.value() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

template <>
struct std::hash<dnsbs::net::Prefix> {
  std::size_t operator()(const dnsbs::net::Prefix& p) const noexcept {
    const std::uint64_t key = (static_cast<std::uint64_t>(p.address().value()) << 6) |
                              static_cast<std::uint64_t>(p.length());
    return static_cast<std::size_t>(key * 0x9e3779b97f4a7c15ULL >> 16);
  }
};
