// Explicit instantiations of the prefix trie for the value types used in
// the library; keeps template bloat out of every translation unit and makes
// compile errors in the trie surface here, once.
#include "net/prefix_trie.hpp"

#include <cstdint>
#include <string>

namespace dnsbs::net {

template class PrefixTrie<std::uint32_t>;
template class PrefixTrie<std::string>;

}  // namespace dnsbs::net
