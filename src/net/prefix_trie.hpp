// Binary (one bit per level) longest-prefix-match trie mapping CIDR
// prefixes to values.  Backs the synthetic AS and geo databases: lookups
// must behave like real whois/GeoIP — most-specific prefix wins.
//
// The trie is a template, so the implementation lives here; prefix_trie.cpp
// holds only explicit instantiations used across the library (keeps link
// sizes honest and catches template errors early).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace dnsbs::net {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts (or replaces) the value for an exact prefix.
  /// Returns true if this is a new prefix, false if it replaced an entry.
  bool insert(const Prefix& prefix, Value value) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Longest-prefix match: returns the value of the most specific prefix
  /// containing `addr`, or nullptr if none.
  const Value* lookup(IPv4Addr addr) const noexcept {
    const Node* node = root_.get();
    const Value* best = node->value ? &*node->value : nullptr;
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->value) best = &*node->value;
    }
    return best;
  }

  /// Exact-prefix fetch (no LPM).
  const Value* find_exact(const Prefix& prefix) const noexcept {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (!node) return nullptr;
    }
    return node->value ? &*node->value : nullptr;
  }

  /// Removes an exact prefix.  Returns true if it existed.
  /// (Interior nodes are left in place; removal is rare in our workloads.)
  bool erase(const Prefix& prefix) noexcept {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (!node) return false;
    }
    if (!node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Visits all (prefix, value) entries in address order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_.get(), 0, 0, fn);
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> children[2];
  };

  template <typename Fn>
  static void walk(const Node* node, std::uint32_t bits, int depth, Fn& fn) {
    if (!node) return;
    if (node->value) fn(Prefix(IPv4Addr(bits), depth), *node->value);
    if (depth < 32) {
      walk(node->children[0].get(), bits, depth + 1, fn);
      walk(node->children[1].get(), bits | (1u << (31 - depth)), depth + 1, fn);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace dnsbs::net
