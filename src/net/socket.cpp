#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dnsbs::net {

namespace {

bool fill_addr(std::string_view host, std::uint16_t port, sockaddr_in& out,
               std::string* error) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  const std::string host_z(host);  // inet_pton needs a NUL terminator
  if (inet_pton(AF_INET, host_z.c_str(), &out.sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address: " + host_z;
    return false;
  }
  return true;
}

/// poll() for readability; true when a read won't block.
bool wait_readable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpSocket::bind(std::string_view bind_addr, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    error_ = std::strerror(errno);
    return false;
  }
  // Absorb intake bursts in the kernel queue; best-effort (the kernel may
  // clamp to rmem_max).
  const int rcvbuf = 4 * 1024 * 1024;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  if (!fill_addr(bind_addr, port, addr, &error_)) {
    close();
    return false;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::strerror(errno);
    close();
    return false;
  }
  return true;
}

std::uint16_t UdpSocket::local_port() const { return valid() ? bound_port(fd_) : 0; }

bool UdpSocket::send_to(std::string_view host, std::uint16_t port, const void* data,
                        std::size_t len) {
  if (!valid()) {
    close();
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) {
      error_ = std::strerror(errno);
      return false;
    }
  }
  sockaddr_in addr{};
  if (!fill_addr(host, port, addr, &error_)) return false;
  const ssize_t sent = ::sendto(fd_, data, len, 0, reinterpret_cast<sockaddr*>(&addr),
                                sizeof(addr));
  if (sent != static_cast<ssize_t>(len)) {
    error_ = std::strerror(errno);
    return false;
  }
  return true;
}

std::optional<std::size_t> UdpSocket::recv_from(void* buf, std::size_t cap,
                                                int timeout_ms, DatagramSource* source) {
  if (!valid() || !wait_readable(fd_, timeout_ms)) return std::nullopt;
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  const ssize_t n =
      ::recvfrom(fd_, buf, cap, 0, reinterpret_cast<sockaddr*>(&from), &from_len);
  if (n < 0) {
    error_ = std::strerror(errno);
    return std::nullopt;
  }
  if (source != nullptr) {
    source->addr = IPv4Addr(ntohl(from.sin_addr.s_addr));
    source->port = ntohs(from.sin_port);
  }
  return static_cast<std::size_t>(n);
}

std::optional<TcpStream> TcpStream::connect(std::string_view host, std::uint16_t port,
                                            int timeout_ms) {
  (void)timeout_ms;  // loopback connects complete immediately; keep blocking
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  if (!fill_addr(host, port, addr, nullptr) ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  return TcpStream(fd);
}

bool TcpStream::write_all(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t left = len;
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpStream::read_exact(void* buf, std::size_t len, int timeout_ms) {
  char* p = static_cast<char*>(buf);
  std::size_t left = len;
  while (left > 0) {
    if (!wait_readable(fd_, timeout_ms)) return false;
    const ssize_t n = ::recv(fd_, p, left, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> TcpStream::read_line(int timeout_ms, std::size_t max_len) {
  std::string line;
  char c = 0;
  while (line.size() < max_len) {
    if (!read_exact(&c, 1, timeout_ms)) return std::nullopt;
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    line.push_back(c);
  }
  return std::nullopt;
}

bool TcpListener::listen(std::string_view bind_addr, std::uint16_t port, int backlog) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  if (!fill_addr(bind_addr, port, addr, &error_)) {
    close();
    return false;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, backlog) != 0) {
    error_ = std::strerror(errno);
    close();
    return false;
  }
  return true;
}

std::uint16_t TcpListener::local_port() const { return valid() ? bound_port(fd_) : 0; }

std::optional<TcpStream> TcpListener::accept(int timeout_ms) {
  if (!valid() || !wait_readable(fd_, timeout_ms)) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    error_ = std::strerror(errno);
    return std::nullopt;
  }
  return TcpStream(fd);
}

}  // namespace dnsbs::net
