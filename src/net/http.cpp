#include "net/http.hpp"

namespace dnsbs::net {

namespace {

bool is_http_method(std::string_view token) {
  return token == "GET" || token == "HEAD" || token == "POST" || token == "PUT" ||
         token == "DELETE" || token == "OPTIONS" || token == "PATCH";
}

}  // namespace

bool looks_like_http_request(std::string_view line) {
  const auto space = line.find(' ');
  if (space == std::string_view::npos) return false;
  // "GET /path HTTP/x.y" — method token, then a target, then the version.
  return is_http_method(line.substr(0, space)) &&
         line.find(" HTTP/") != std::string_view::npos;
}

std::optional<HttpRequest> read_http_request(TcpStream& stream,
                                             const std::string& request_line,
                                             int timeout_ms) {
  const auto first = request_line.find(' ');
  const auto last = request_line.rfind(' ');
  if (first == std::string::npos || last == first) return std::nullopt;

  HttpRequest request;
  request.method = request_line.substr(0, first);
  request.version = request_line.substr(last + 1);
  std::string target = request_line.substr(first + 1, last - first - 1);
  if (target.empty() || target[0] != '/') return std::nullopt;
  const auto qmark = target.find('?');
  if (qmark != std::string::npos) {
    request.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request.path = std::move(target);

  // Drain headers up to the blank line; a peer that trickles more than
  // 100 header lines is cut off (scrapers send a handful).
  for (int i = 0; i < 100; ++i) {
    const auto header = stream.read_line(timeout_ms);
    if (!header) return std::nullopt;
    if (header->empty()) return request;
  }
  return std::nullopt;
}

std::optional<std::string> query_param(std::string_view query, std::string_view name) {
  while (!query.empty()) {
    const auto amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    const auto eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
      return std::string(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return std::nullopt;
}

std::string_view http_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += http_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace dnsbs::net
