// dnstap-style structured logging (paper §III-A: "DNS logging is supported
// in most servers, and tools such as dnstap define standard logging
// formats").
//
// One JSON object per line, schema:
//   {"t":12345,"q":"192.0.2.53","o":"1.2.3.4","rc":"NOERROR"}
//
// The JSON subset is hand-rolled (no external deps): objects of
// string/number fields, double-quoted strings with \" \\ \n \t escapes.
// Parsing is tolerant of field order and unknown extra fields, so logs
// produced by richer emitters still replay.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "dns/query_log.hpp"

namespace dnsbs::dns {

/// Serializes one record as a JSON line (no trailing newline).
std::string to_json(const QueryRecord& record);

/// Parses one JSON line; nullopt on malformed input or missing fields.
std::optional<QueryRecord> from_json(std::string_view line);

/// Stream writer, one JSON object per line.
class JsonLogWriter {
 public:
  explicit JsonLogWriter(std::ostream& os) : os_(os) {}
  void write(const QueryRecord& record);
  std::size_t count() const noexcept { return count_; }

 private:
  std::ostream& os_;
  std::size_t count_ = 0;
};

/// Stream reader; malformed lines are counted and skipped.
class JsonLogReader {
 public:
  explicit JsonLogReader(std::istream& is) : is_(is) {}
  std::optional<QueryRecord> next();
  std::size_t skipped() const noexcept { return skipped_; }

 private:
  std::istream& is_;
  std::size_t skipped_ = 0;
};

}  // namespace dnsbs::dns
