#include "dns/query_log.hpp"

#include <charconv>
#include <istream>
#include <limits>
#include <ostream>

#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace dnsbs::dns {

namespace {

// Parse failures, by reason.  Only the (rare) error paths touch the
// registry per call; the hot accepted path is tallied in bulk by
// QueryLogReader.  Parsing one input is order-independent, so these are
// deterministic series.
util::MetricCounter& g_err_structure = util::metrics_counter("dnsbs.parse.err_structure");
util::MetricCounter& g_err_time = util::metrics_counter("dnsbs.parse.err_time");
util::MetricCounter& g_err_addr = util::metrics_counter("dnsbs.parse.err_addr");
util::MetricCounter& g_err_rcode = util::metrics_counter("dnsbs.parse.err_rcode");
util::MetricCounter& g_lines = util::metrics_counter("dnsbs.parse.lines");
util::MetricCounter& g_records = util::metrics_counter("dnsbs.parse.records");

std::optional<RCode> rcode_from_string(std::string_view s) noexcept {
  if (s == "NOERROR") return RCode::kNoError;
  if (s == "NXDOMAIN") return RCode::kNXDomain;
  if (s == "SERVFAIL") return RCode::kServFail;
  if (s == "FORMERR") return RCode::kFormErr;
  if (s == "NOTIMP") return RCode::kNotImp;
  if (s == "REFUSED") return RCode::kRefused;
  return std::nullopt;
}
}  // namespace

std::string serialize(const QueryRecord& record) {
  return util::format("%lld\t%s\t%s\t%s", static_cast<long long>(record.time.secs()),
                      record.querier.to_string().c_str(),
                      record.originator.to_string().c_str(), to_string(record.rcode));
}

std::optional<QueryRecord> parse_record(std::string_view line) {
  // Fast path: one scan over the raw line, no intermediate field vector.
  // Semantics match the old util::split-based parser exactly: exactly 4
  // tab-separated fields, each tolerating surrounding whitespace.
  const std::size_t t0 = line.find('\t');
  if (t0 == std::string_view::npos) return g_err_structure.inc(), std::nullopt;
  const std::size_t t1 = line.find('\t', t0 + 1);
  if (t1 == std::string_view::npos) return g_err_structure.inc(), std::nullopt;
  const std::size_t t2 = line.find('\t', t1 + 1);
  if (t2 == std::string_view::npos) return g_err_structure.inc(), std::nullopt;
  if (line.find('\t', t2 + 1) != std::string_view::npos) {
    g_err_structure.inc();
    return std::nullopt;
  }

  const std::string_view secs_field = util::trim(line.substr(0, t0));
  std::uint64_t secs = 0;
  const auto [end, ec] =
      std::from_chars(secs_field.data(), secs_field.data() + secs_field.size(), secs);
  if (ec != std::errc{} || end != secs_field.data() + secs_field.size() ||
      secs_field.empty()) {
    g_err_time.inc();
    return std::nullopt;
  }
  // SimTime is signed; a timestamp past INT64_MAX would wrap negative and
  // run the dedup/aggregation clock backwards, so the line is malformed.
  if (secs > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    g_err_time.inc();
    return std::nullopt;
  }
  const auto querier = net::IPv4Addr::parse(util::trim(line.substr(t0 + 1, t1 - t0 - 1)));
  const auto originator =
      net::IPv4Addr::parse(util::trim(line.substr(t1 + 1, t2 - t1 - 1)));
  if (!querier || !originator) return g_err_addr.inc(), std::nullopt;
  const auto rcode = rcode_from_string(util::trim(line.substr(t2 + 1)));
  if (!rcode) return g_err_rcode.inc(), std::nullopt;
  return QueryRecord{util::SimTime::seconds(static_cast<std::int64_t>(secs)), *querier,
                     *originator, *rcode};
}

void QueryLogWriter::write(const QueryRecord& record) {
  os_ << serialize(record) << '\n';
  ++count_;
}

QueryLogReader::~QueryLogReader() { publish_metrics(); }

void QueryLogReader::publish_metrics() {
  g_lines.add(lines_ - published_lines_);
  g_records.add(records_ - published_records_);
  published_lines_ = lines_;
  published_records_ = records_;
}

std::optional<QueryRecord> QueryLogReader::next() {
  while (std::getline(is_, line_)) {
    ++lines_;
    if (line_.empty()) continue;
    if (auto record = parse_record(line_)) {
      ++records_;
      return record;
    }
    ++skipped_;
  }
  publish_metrics();
  return std::nullopt;
}

std::vector<QueryRecord> read_all(std::istream& is) {
  QueryLogReader reader(is);
  std::vector<QueryRecord> out;
  while (auto record = reader.next()) out.push_back(*record);
  return out;
}

}  // namespace dnsbs::dns
