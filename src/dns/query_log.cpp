#include "dns/query_log.hpp"

#include <istream>
#include <limits>
#include <ostream>

#include "util/strings.hpp"

namespace dnsbs::dns {

namespace {
std::optional<RCode> rcode_from_string(std::string_view s) noexcept {
  if (s == "NOERROR") return RCode::kNoError;
  if (s == "NXDOMAIN") return RCode::kNXDomain;
  if (s == "SERVFAIL") return RCode::kServFail;
  if (s == "FORMERR") return RCode::kFormErr;
  if (s == "NOTIMP") return RCode::kNotImp;
  if (s == "REFUSED") return RCode::kRefused;
  return std::nullopt;
}
}  // namespace

std::string serialize(const QueryRecord& record) {
  return util::format("%lld\t%s\t%s\t%s", static_cast<long long>(record.time.secs()),
                      record.querier.to_string().c_str(),
                      record.originator.to_string().c_str(), to_string(record.rcode));
}

std::optional<QueryRecord> parse_record(std::string_view line) {
  const auto fields = util::split(line, '\t');
  if (fields.size() != 4) return std::nullopt;
  std::uint64_t secs = 0;
  if (!util::parse_u64(util::trim(fields[0]), secs)) return std::nullopt;
  // SimTime is signed; a timestamp past INT64_MAX would wrap negative and
  // run the dedup/aggregation clock backwards, so the line is malformed.
  if (secs > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    return std::nullopt;
  }
  const auto querier = net::IPv4Addr::parse(util::trim(fields[1]));
  const auto originator = net::IPv4Addr::parse(util::trim(fields[2]));
  const auto rcode = rcode_from_string(util::trim(fields[3]));
  if (!querier || !originator || !rcode) return std::nullopt;
  return QueryRecord{util::SimTime::seconds(static_cast<std::int64_t>(secs)), *querier,
                     *originator, *rcode};
}

void QueryLogWriter::write(const QueryRecord& record) {
  os_ << serialize(record) << '\n';
  ++count_;
}

std::optional<QueryRecord> QueryLogReader::next() {
  std::string line;
  while (std::getline(is_, line)) {
    if (line.empty()) continue;
    if (auto record = parse_record(line)) return record;
    ++skipped_;
  }
  return std::nullopt;
}

std::vector<QueryRecord> read_all(std::istream& is) {
  QueryLogReader reader(is);
  std::vector<QueryRecord> out;
  while (auto record = reader.next()) out.push_back(*record);
  return out;
}

}  // namespace dnsbs::dns
