#include "dns/json_log.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/strings.hpp"

namespace dnsbs::dns {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

/// Minimal tolerant parser for one flat JSON object of string or integer
/// fields.  Returns field map; nullopt on structural errors.
std::optional<std::unordered_map<std::string, std::string>> parse_flat_object(
    std::string_view s) {
  std::unordered_map<std::string, std::string> fields;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  };
  const auto parse_string = [&]() -> std::optional<std::string> {
    if (i >= s.size() || s[i] != '"') return std::nullopt;
    ++i;
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return std::nullopt;
        switch (s[i]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '/': out += '/'; break;
          default: return std::nullopt;  // unsupported escape
        }
      } else {
        out += s[i];
      }
      ++i;
    }
    if (i >= s.size()) return std::nullopt;  // unterminated
    ++i;                                     // closing quote
    return out;
  };

  skip_ws();
  if (i >= s.size() || s[i] != '{') return std::nullopt;
  ++i;
  skip_ws();
  if (i < s.size() && s[i] == '}') return fields;  // empty object
  while (true) {
    skip_ws();
    const auto key = parse_string();
    if (!key) return std::nullopt;
    skip_ws();
    if (i >= s.size() || s[i] != ':') return std::nullopt;
    ++i;
    skip_ws();
    std::string value;
    if (i < s.size() && s[i] == '"') {
      const auto v = parse_string();
      if (!v) return std::nullopt;
      value = *v;
    } else {
      // Bare token (number / bool / null) up to , or }.
      const std::size_t start = i;
      while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
      value = std::string(util::trim(s.substr(start, i - start)));
      if (value.empty()) return std::nullopt;
    }
    fields[*key] = std::move(value);
    skip_ws();
    if (i >= s.size()) return std::nullopt;
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == '}') break;
    return std::nullopt;
  }
  return fields;
}

std::optional<RCode> rcode_from(std::string_view s) noexcept {
  if (s == "NOERROR") return RCode::kNoError;
  if (s == "NXDOMAIN") return RCode::kNXDomain;
  if (s == "SERVFAIL") return RCode::kServFail;
  if (s == "FORMERR") return RCode::kFormErr;
  if (s == "NOTIMP") return RCode::kNotImp;
  if (s == "REFUSED") return RCode::kRefused;
  return std::nullopt;
}

}  // namespace

std::string to_json(const QueryRecord& record) {
  std::string out = "{\"t\":";
  out += std::to_string(record.time.secs());
  out += ",\"q\":\"";
  append_escaped(out, record.querier.to_string());
  out += "\",\"o\":\"";
  append_escaped(out, record.originator.to_string());
  out += "\",\"rc\":\"";
  append_escaped(out, to_string(record.rcode));
  out += "\"}";
  return out;
}

std::optional<QueryRecord> from_json(std::string_view line) {
  const auto fields = parse_flat_object(line);
  if (!fields) return std::nullopt;
  const auto get = [&fields](const char* key) -> std::optional<std::string_view> {
    const auto it = fields->find(key);
    if (it == fields->end()) return std::nullopt;
    return std::string_view(it->second);
  };
  const auto t = get("t");
  const auto q = get("q");
  const auto o = get("o");
  const auto rc = get("rc");
  if (!t || !q || !o || !rc) return std::nullopt;
  std::uint64_t secs = 0;
  if (!util::parse_u64(*t, secs)) return std::nullopt;
  const auto querier = net::IPv4Addr::parse(*q);
  const auto originator = net::IPv4Addr::parse(*o);
  const auto rcode = rcode_from(*rc);
  if (!querier || !originator || !rcode) return std::nullopt;
  return QueryRecord{util::SimTime::seconds(static_cast<std::int64_t>(secs)), *querier,
                     *originator, *rcode};
}

void JsonLogWriter::write(const QueryRecord& record) {
  os_ << to_json(record) << '\n';
  ++count_;
}

std::optional<QueryRecord> JsonLogReader::next() {
  std::string line;
  while (std::getline(is_, line)) {
    if (line.empty()) continue;
    if (auto record = from_json(line)) return record;
    ++skipped_;
  }
  return std::nullopt;
}

}  // namespace dnsbs::dns
