#include "dns/name.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace dnsbs::dns {

namespace {
constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxWire = 255;

bool valid_label_char(char c) noexcept {
  // Accept the LDH set plus underscore (seen in real reverse trees) —
  // printable, no dots or whitespace.
  const unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '-' || c == '_';
}
}  // namespace

DnsName DnsName::from_labels(std::vector<std::string> labels) {
  DnsName name;
  name.labels_.reserve(labels.size());
  for (auto& label : labels) {
    name.labels_.push_back(util::to_lower(label));
  }
  return name;
}

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return DnsName{};
  if (text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  DnsName name;
  std::size_t wire = 1;  // root byte
  for (const auto piece : util::split(text, '.')) {
    if (piece.empty() || piece.size() > kMaxLabel) return std::nullopt;
    for (const char c : piece) {
      if (!valid_label_char(c)) return std::nullopt;
    }
    wire += 1 + piece.size();
    if (wire > kMaxWire) return std::nullopt;
    name.labels_.push_back(util::to_lower(piece));
  }
  return name;
}

bool DnsName::ends_in(const DnsName& suffix) const noexcept {
  if (suffix.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - suffix.labels_.size();
  for (std::size_t i = 0; i < suffix.labels_.size(); ++i) {
    if (labels_[offset + i] != suffix.labels_[i]) return false;
  }
  return true;
}

DnsName DnsName::parent() const {
  DnsName p;
  if (labels_.size() <= 1) return p;
  p.labels_.assign(labels_.begin() + 1, labels_.end());
  return p;
}

DnsName DnsName::child(std::string_view label) const {
  DnsName c;
  c.labels_.reserve(labels_.size() + 1);
  c.labels_.push_back(util::to_lower(label));
  c.labels_.insert(c.labels_.end(), labels_.begin(), labels_.end());
  return c;
}

std::size_t DnsName::wire_length() const noexcept {
  std::size_t len = 1;
  for (const auto& label : labels_) len += 1 + label.size();
  return len;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i) out.push_back('.');
    out.append(labels_[i]);
  }
  return out;
}

}  // namespace dnsbs::dns
