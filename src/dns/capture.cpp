#include "dns/capture.hpp"

#include "dns/reverse.hpp"
#include "util/metrics.hpp"

namespace dnsbs::dns {

namespace {
// Registry mirror of CaptureStats (see the struct comment): same names,
// same partition invariant, summed across every capture stream in the
// process.  Classification of a packet stream is order-independent, so
// these are deterministic series.
util::MetricCounter& g_packets = util::metrics_counter("dnsbs.capture.packets");
util::MetricCounter& g_malformed = util::metrics_counter("dnsbs.capture.malformed");
util::MetricCounter& g_responses = util::metrics_counter("dnsbs.capture.responses");
util::MetricCounter& g_rejected = util::metrics_counter("dnsbs.capture.rejected_query");
util::MetricCounter& g_non_ptr = util::metrics_counter("dnsbs.capture.non_ptr");
util::MetricCounter& g_non_reverse = util::metrics_counter("dnsbs.capture.non_reverse_name");
util::MetricCounter& g_accepted = util::metrics_counter("dnsbs.capture.accepted");
}  // namespace

std::optional<QueryRecord> record_from_packet(std::span<const std::uint8_t> payload,
                                              util::SimTime time, net::IPv4Addr source,
                                              CaptureStats& stats) {
  ++stats.packets;
  g_packets.inc();
  const auto message = decode(payload.data(), payload.size());
  if (!message) {
    ++stats.malformed;
    g_malformed.inc();
    return std::nullopt;
  }
  if (message->is_response) {
    ++stats.responses;
    g_responses.inc();
    return std::nullopt;
  }
  if (message->opcode != 0 || message->questions.size() != 1) {
    // Decoded fine; the sensor's policy (plain QUERY, exactly one
    // question) is what rejects it — not corruption.
    ++stats.rejected_query;
    g_rejected.inc();
    return std::nullopt;
  }
  const Question& q = message->questions.front();
  if (q.qtype != QType::kPTR || q.qclass != QClass::kIN) {
    ++stats.non_ptr;
    g_non_ptr.inc();
    return std::nullopt;
  }
  const auto originator = address_from_reverse(q.name);
  if (!originator) {
    ++stats.non_reverse_name;
    g_non_reverse.inc();
    return std::nullopt;
  }
  ++stats.accepted;
  g_accepted.inc();
  // The response outcome is unknown at query time; NOERROR is recorded
  // and may be refined by matching responses in a fuller capture stack.
  return QueryRecord{time, source, *originator, RCode::kNoError};
}

std::vector<std::uint8_t> make_ptr_query_packet(std::uint16_t id,
                                                net::IPv4Addr originator) {
  return encode(Message::ptr_query(id, originator));
}

}  // namespace dnsbs::dns
