#include "dns/capture.hpp"

#include "dns/reverse.hpp"

namespace dnsbs::dns {

std::optional<QueryRecord> record_from_packet(std::span<const std::uint8_t> payload,
                                              util::SimTime time, net::IPv4Addr source,
                                              CaptureStats& stats) {
  ++stats.packets;
  const auto message = decode(payload.data(), payload.size());
  if (!message) {
    ++stats.malformed;
    return std::nullopt;
  }
  if (message->is_response) {
    ++stats.responses;
    return std::nullopt;
  }
  if (message->opcode != 0 || message->questions.size() != 1) {
    ++stats.malformed;
    return std::nullopt;
  }
  const Question& q = message->questions.front();
  if (q.qtype != QType::kPTR || q.qclass != QClass::kIN) {
    ++stats.non_ptr;
    return std::nullopt;
  }
  const auto originator = address_from_reverse(q.name);
  if (!originator) {
    ++stats.non_reverse_name;
    return std::nullopt;
  }
  ++stats.accepted;
  // The response outcome is unknown at query time; NOERROR is recorded
  // and may be refined by matching responses in a fuller capture stack.
  return QueryRecord{time, source, *originator, RCode::kNoError};
}

std::vector<std::uint8_t> make_ptr_query_packet(std::uint16_t id,
                                                net::IPv4Addr originator) {
  return encode(Message::ptr_query(id, originator));
}

}  // namespace dnsbs::dns
