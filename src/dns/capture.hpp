// Packet-capture ingestion (paper §III-A: "Queries may be obtained
// through packet capture on the network or through logging in DNS server
// itself").
//
// Converts raw DNS query packets observed at an authority into the
// sensor's QueryRecord tuples.  Only well-formed reverse queries pass:
// QR=0, opcode QUERY, QTYPE PTR, QCLASS IN, QNAME a full
// d.c.b.a.in-addr.arpa name.  Everything else — forward queries, junk,
// responses, truncated packets — is filtered, with counters so operators
// can see what their capture point carries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dns/query_log.hpp"

namespace dnsbs::dns {

/// Per-capture classification tallies.  This is a thin caller-local view:
/// the canonical series live in the process-wide metrics registry as
/// dnsbs.capture.{packets,malformed,responses,rejected_query,non_ptr,
/// non_reverse_name,accepted}, which record_from_packet bumps in lockstep
/// with this struct.  Keep the struct for cheap per-stream accounting (one
/// capture point per stats object) where the global registry would
/// conflate streams.
struct CaptureStats {
  std::uint64_t packets = 0;
  std::uint64_t malformed = 0;        ///< undecodable wire data
  std::uint64_t responses = 0;        ///< QR=1: not queries
  std::uint64_t rejected_query = 0;   ///< decodable but opcode != QUERY or QDCOUNT != 1
  std::uint64_t non_ptr = 0;          ///< forward or non-PTR queries
  std::uint64_t non_reverse_name = 0; ///< PTR outside in-addr.arpa or partial
  std::uint64_t accepted = 0;

  /// Partition invariant: every packet lands in exactly one outcome
  /// bucket, so `packets` equals the sum of the six buckets — never less
  /// (a dropped classification) and never more (a double count).  The fuzz
  /// harness asserts this after feeding mutated traffic, so a future
  /// classification path that forgets (or double-counts) a bucket is
  /// caught immediately.  `malformed` is reserved for wire data the codec
  /// cannot decode; well-formed packets the sensor's policy declines
  /// (non-QUERY opcodes, multi-question messages) land in rejected_query.
  bool consistent() const noexcept {
    return packets == malformed + responses + rejected_query + non_ptr +
                          non_reverse_name + accepted;
  }
};

/// Extracts a backscatter record from one DNS packet payload.
/// `time` and `source` come from the capture layer (pcap timestamp and
/// IP source address).  Returns nullopt for non-backscatter packets and
/// classifies the reason into `stats`.
std::optional<QueryRecord> record_from_packet(std::span<const std::uint8_t> payload,
                                              util::SimTime time, net::IPv4Addr source,
                                              CaptureStats& stats);

/// Builds the wire payload a querier would send for `originator`
/// (convenience for tests and replay tools).
std::vector<std::uint8_t> make_ptr_query_packet(std::uint16_t id,
                                                net::IPv4Addr originator);

}  // namespace dnsbs::dns
