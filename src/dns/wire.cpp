#include "dns/wire.hpp"

#include <cstring>
#include <unordered_map>

#include "dns/reverse.hpp"

namespace dnsbs::dns {

const char* to_string(QType t) noexcept {
  switch (t) {
    case QType::kA: return "A";
    case QType::kNS: return "NS";
    case QType::kCNAME: return "CNAME";
    case QType::kSOA: return "SOA";
    case QType::kPTR: return "PTR";
    case QType::kMX: return "MX";
    case QType::kTXT: return "TXT";
    case QType::kAAAA: return "AAAA";
    case QType::kANY: return "ANY";
  }
  return "TYPE?";
}

const char* to_string(RCode r) noexcept {
  switch (r) {
    case RCode::kNoError: return "NOERROR";
    case RCode::kFormErr: return "FORMERR";
    case RCode::kServFail: return "SERVFAIL";
    case RCode::kNXDomain: return "NXDOMAIN";
    case RCode::kNotImp: return "NOTIMP";
    case RCode::kRefused: return "REFUSED";
  }
  return "RCODE?";
}

Message Message::ptr_query(std::uint16_t id, net::IPv4Addr originator) {
  Message m;
  m.id = id;
  m.recursion_desired = true;
  m.questions.push_back(Question{
      .name = reverse_name(originator), .qtype = QType::kPTR, .qclass = QClass::kIN});
  return m;
}

Message Message::response_to(const Message& query, RCode rcode,
                             std::vector<ResourceRecord> answers) {
  Message m;
  m.id = query.id;
  m.is_response = true;
  m.opcode = query.opcode;
  m.recursion_desired = query.recursion_desired;
  m.rcode = rcode;
  m.questions = query.questions;
  m.answers = std::move(answers);
  return m;
}

namespace {

// RFC 1035 wire limits, enforced on both encode and decode.
constexpr std::size_t kMaxLabelLen = 63;        // §2.3.4: label octets
constexpr std::size_t kMaxNameWire = 255;       // §2.3.4: whole-name octets
constexpr std::size_t kMaxPointerOffset = 0x3fff;  // §4.1.4: 14-bit offset
constexpr std::size_t kMaxSectionCount = 0xffff;   // header counts are u16
constexpr std::size_t kMaxRdataLen = 0xffff;       // RDLENGTH is u16

// ---- encoding ----

class Encoder {
 public:
  std::vector<std::uint8_t> take() { return std::move(out_); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }

  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const noexcept { return out_.size(); }

  /// Emits a name with compression: the longest previously-emitted suffix
  /// is replaced by a pointer (RFC 1035 §4.1.4).  Returns false — emitting
  /// nothing usable — for names the wire format cannot represent: empty or
  /// > 63-byte labels, or > 255 octets total.  (DnsName::parse enforces
  /// these, but from_labels and decoded-then-edited names do not.)
  bool name(const DnsName& n) {
    const auto& labels = n.labels();
    std::size_t wire_len = 1;  // root byte
    for (const auto& label : labels) {
      if (label.empty() || label.size() > kMaxLabelLen) return false;
      wire_len += 1 + label.size();
    }
    if (wire_len > kMaxNameWire) return false;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      // The suffix starting at label i, keyed in wire form (length-prefixed
      // labels) so {"a","b"} and the single label "a.b" cannot alias.
      std::string key;
      for (std::size_t j = i; j < labels.size(); ++j) {
        key.push_back(static_cast<char>(labels[j].size()));
        key.append(labels[j]);
      }
      const auto it = suffix_offsets_.find(key);
      if (it != suffix_offsets_.end() && it->second <= kMaxPointerOffset) {
        u16(static_cast<std::uint16_t>(0xc000 | it->second));
        return true;
      }
      if (out_.size() <= kMaxPointerOffset) {
        suffix_offsets_.emplace(std::move(key), out_.size());
      }
      u8(static_cast<std::uint8_t>(labels[i].size()));
      for (const char c : labels[i]) out_.push_back(static_cast<std::uint8_t>(c));
    }
    u8(0);  // root
    return true;
  }

 private:
  std::vector<std::uint8_t> out_;
  std::unordered_map<std::string, std::size_t> suffix_offsets_;
};

bool encode_rr(Encoder& enc, const ResourceRecord& rr) {
  if (!enc.name(rr.name)) return false;
  enc.u16(static_cast<std::uint16_t>(rr.rtype));
  enc.u16(static_cast<std::uint16_t>(rr.rclass));
  enc.u32(rr.ttl);
  const std::size_t rdlength_at = enc.size();
  enc.u16(0);  // placeholder
  const std::size_t rdata_start = enc.size();
  if (const auto* addr = std::get_if<net::IPv4Addr>(&rr.rdata.value)) {
    enc.u32(addr->value());
  } else if (const auto* nm = std::get_if<DnsName>(&rr.rdata.value)) {
    if (!enc.name(*nm)) return false;
  } else {
    const auto& raw = std::get<std::vector<std::uint8_t>>(rr.rdata.value);
    for (const std::uint8_t b : raw) enc.u8(b);
  }
  const std::size_t rdata_len = enc.size() - rdata_start;
  if (rdata_len > kMaxRdataLen) return false;  // would truncate in the u16 field
  enc.patch_u16(rdlength_at, static_cast<std::uint16_t>(rdata_len));
  return true;
}

// ---- decoding ----

class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = data_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (pos_ + 2 > size_) return false;
    v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t hi = 0, lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    v = (static_cast<std::uint32_t>(hi) << 16) | lo;
    return true;
  }

  std::size_t pos() const noexcept { return pos_; }
  bool seek(std::size_t p) {
    if (p > size_) return false;
    pos_ = p;
    return true;
  }

  /// Decodes a possibly-compressed name starting at the cursor.
  bool name(DnsName& out) {
    std::vector<std::string> labels;
    std::size_t cursor = pos_;
    std::size_t jumps = 0;
    bool jumped = false;
    std::size_t after_first_pointer = 0;
    std::size_t wire_len = 1;  // root byte
    while (true) {
      if (cursor >= size_) return false;
      const std::uint8_t len = data_[cursor];
      if ((len & 0xc0) == 0xc0) {
        if (cursor + 1 >= size_) return false;
        if (++jumps > 64) return false;  // pointer loop
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3f) << 8) | data_[cursor + 1];
        if (!jumped) {
          after_first_pointer = cursor + 2;
          jumped = true;
        }
        if (target >= cursor) return false;  // only backwards pointers
        cursor = target;
        continue;
      }
      if ((len & 0xc0) != 0) return false;  // reserved label types
      ++cursor;
      if (len == 0) break;
      if (cursor + len > size_) return false;
      // RFC 1035 §2.3.4 total-name cap; chasing pointers must not let an
      // adversarially-compressed packet expand past what any legal name
      // occupies on the wire.
      wire_len += 1 + static_cast<std::size_t>(len);
      if (wire_len > kMaxNameWire) return false;
      labels.emplace_back(reinterpret_cast<const char*>(data_ + cursor), len);
      cursor += len;
    }
    pos_ = jumped ? after_first_pointer : cursor;
    out = DnsName::from_labels(std::move(labels));
    return true;
  }

  /// Reads `n` raw bytes.  Bounds are checked before any allocation, so a
  /// claimed length the packet does not actually hold can never drive a
  /// speculative multi-kilobyte allocation.
  bool bytes(std::size_t n, std::vector<std::uint8_t>& out) {
    if (n > size_ - pos_) return false;
    out.reserve(n);
    out.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

bool decode_rr(Decoder& dec, ResourceRecord& rr) {
  std::uint16_t rtype = 0, rclass = 0, rdlength = 0;
  if (!dec.name(rr.name) || !dec.u16(rtype) || !dec.u16(rclass) || !dec.u32(rr.ttl) ||
      !dec.u16(rdlength)) {
    return false;
  }
  rr.rtype = static_cast<QType>(rtype);
  rr.rclass = static_cast<QClass>(rclass);
  const std::size_t rdata_start = dec.pos();
  switch (rr.rtype) {
    case QType::kA: {
      std::uint32_t v = 0;
      if (rdlength != 4 || !dec.u32(v)) return false;
      rr.rdata.value = net::IPv4Addr(v);
      return true;
    }
    case QType::kPTR:
    case QType::kNS:
    case QType::kCNAME: {
      DnsName n;
      if (!dec.name(n)) return false;
      if (dec.pos() != rdata_start + rdlength) return false;
      rr.rdata.value = std::move(n);
      return true;
    }
    default: {
      std::vector<std::uint8_t> raw;
      if (!dec.bytes(rdlength, raw)) return false;
      rr.rdata.value = std::move(raw);
      return true;
    }
  }
}

}  // namespace

std::optional<std::vector<std::uint8_t>> try_encode(const Message& msg) {
  // Header counts are 16-bit; an oversize section would silently encode a
  // corrupt header, so it is rejected up front.
  if (msg.questions.size() > kMaxSectionCount || msg.answers.size() > kMaxSectionCount ||
      msg.authorities.size() > kMaxSectionCount ||
      msg.additionals.size() > kMaxSectionCount) {
    return std::nullopt;
  }
  Encoder enc;
  enc.u16(msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((msg.opcode & 0xf) << 11);
  if (msg.authoritative) flags |= 0x0400;
  if (msg.truncated) flags |= 0x0200;
  if (msg.recursion_desired) flags |= 0x0100;
  if (msg.recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(msg.rcode) & 0xf;
  enc.u16(flags);
  enc.u16(static_cast<std::uint16_t>(msg.questions.size()));
  enc.u16(static_cast<std::uint16_t>(msg.answers.size()));
  enc.u16(static_cast<std::uint16_t>(msg.authorities.size()));
  enc.u16(static_cast<std::uint16_t>(msg.additionals.size()));
  for (const auto& q : msg.questions) {
    if (!enc.name(q.name)) return std::nullopt;
    enc.u16(static_cast<std::uint16_t>(q.qtype));
    enc.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : msg.answers) {
    if (!encode_rr(enc, rr)) return std::nullopt;
  }
  for (const auto& rr : msg.authorities) {
    if (!encode_rr(enc, rr)) return std::nullopt;
  }
  for (const auto& rr : msg.additionals) {
    if (!encode_rr(enc, rr)) return std::nullopt;
  }
  return enc.take();
}

std::vector<std::uint8_t> encode(const Message& msg) {
  return try_encode(msg).value_or(std::vector<std::uint8_t>{});
}

std::optional<Message> decode(const std::uint8_t* data, std::size_t size) {
  Decoder dec(data, size);
  Message msg;
  std::uint16_t flags = 0, qd = 0, an = 0, ns = 0, ar = 0;
  if (!dec.u16(msg.id) || !dec.u16(flags) || !dec.u16(qd) || !dec.u16(an) || !dec.u16(ns) ||
      !dec.u16(ar)) {
    return std::nullopt;
  }
  msg.is_response = (flags & 0x8000) != 0;
  msg.opcode = static_cast<std::uint8_t>((flags >> 11) & 0xf);
  msg.authoritative = (flags & 0x0400) != 0;
  msg.truncated = (flags & 0x0200) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  msg.recursion_available = (flags & 0x0080) != 0;
  msg.rcode = static_cast<RCode>(flags & 0xf);

  for (std::uint16_t i = 0; i < qd; ++i) {
    Question q;
    std::uint16_t qtype = 0, qclass = 0;
    if (!dec.name(q.name) || !dec.u16(qtype) || !dec.u16(qclass)) return std::nullopt;
    q.qtype = static_cast<QType>(qtype);
    q.qclass = static_cast<QClass>(qclass);
    msg.questions.push_back(std::move(q));
  }
  const auto read_section = [&dec](std::uint16_t count, std::vector<ResourceRecord>& out) {
    for (std::uint16_t i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!decode_rr(dec, rr)) return false;
      out.push_back(std::move(rr));
    }
    return true;
  };
  if (!read_section(an, msg.answers) || !read_section(ns, msg.authorities) ||
      !read_section(ar, msg.additionals)) {
    return std::nullopt;
  }
  return msg;
}

std::optional<Message> decode(const std::vector<std::uint8_t>& wire) {
  return decode(wire.data(), wire.size());
}

}  // namespace dnsbs::dns
