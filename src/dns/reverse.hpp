// Reverse-DNS (in-addr.arpa) codec.
//
// The sensor's raw signal is PTR queries whose QNAME encodes the originator
// address: 1.2.3.4 -> 4.3.2.1.in-addr.arpa.  This header converts both ways
// and exposes the zone-cut structure of the reverse tree (the delegation
// levels whose NS caching attenuates what each authority sees).
#pragma once

#include <optional>

#include "dns/name.hpp"
#include "net/ipv4.hpp"

namespace dnsbs::dns {

/// Levels of the reverse tree at which an authority may sit.  Deeper levels
/// see less-attenuated backscatter (paper §II: the final authority sees all
/// queriers, roots see a cached/filtered fraction).
enum class ReverseZoneLevel {
  kRoot = 0,    ///< "." / in-addr.arpa itself (root servers)
  kSlash8 = 1,  ///< X.in-addr.arpa (e.g. a ccTLD-delegated /8)
  kSlash16 = 2, ///< Y.X.in-addr.arpa
  kSlash24 = 3, ///< Z.Y.X.in-addr.arpa (the final authority zone)
};

/// "in-addr.arpa" as a DnsName.
const DnsName& in_addr_arpa();

/// Builds the PTR QNAME for an address: 1.2.3.4 -> "4.3.2.1.in-addr.arpa".
DnsName reverse_name(net::IPv4Addr addr);

/// Recovers the address from a full reverse QNAME; nullopt if the name is
/// not of the exact d.c.b.a.in-addr.arpa form.
std::optional<net::IPv4Addr> address_from_reverse(const DnsName& qname);

/// True if `name` is underneath in-addr.arpa at all.
bool is_reverse_name(const DnsName& name);

/// The zone name covering `addr` at a given level:
/// level kSlash8 for 1.2.3.4 -> "1.in-addr.arpa".
DnsName reverse_zone(net::IPv4Addr addr, ReverseZoneLevel level);

/// Prefix corresponding to a reverse zone level for an address
/// (kSlash16 for 1.2.3.4 -> 1.2.0.0/16).
net::Prefix zone_prefix(net::IPv4Addr addr, ReverseZoneLevel level);

}  // namespace dnsbs::dns
