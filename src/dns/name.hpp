// DNS domain names (RFC 1035).
//
// Names are sequences of labels, case-insensitive, at most 63 bytes per
// label and 255 bytes total in wire form.  The feature extractor reasons
// about labels ("the leftmost component contains 'mail'"), so DnsName keeps
// an explicit label vector rather than a flat string.
#pragma once

#include <compare>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnsbs::dns {

class DnsName {
 public:
  /// The root name (zero labels).
  DnsName() = default;

  /// Builds from pre-split labels; callers must pass valid labels
  /// (non-empty, <= 63 bytes).  Labels are lowercased.
  static DnsName from_labels(std::vector<std::string> labels);

  /// Parses presentation format ("mail.example.com", optional trailing
  /// dot).  Returns nullopt for empty labels, oversize labels, oversize
  /// names, or non-ASCII-printable characters.
  static std::optional<DnsName> parse(std::string_view text);

  bool is_root() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }

  /// i-th label from the *left* (host side): label(0) of mail.example.com
  /// is "mail".
  const std::string& label(std::size_t i) const noexcept { return labels_[i]; }

  const std::vector<std::string>& labels() const noexcept { return labels_; }

  /// Leftmost (host) label, or empty for root.
  std::string_view host_label() const noexcept {
    return labels_.empty() ? std::string_view{} : std::string_view{labels_.front()};
  }

  /// True if this name is `suffix` or ends with it ("a.b.example.com"
  /// ends_in "example.com").  Root is a suffix of everything.
  bool ends_in(const DnsName& suffix) const noexcept;

  /// The name with the leftmost label removed; parent of root is root.
  DnsName parent() const;

  /// Prepends a label, returning the child name.
  DnsName child(std::string_view label) const;

  /// Wire-format length (sum of 1+len per label, +1 root byte).
  std::size_t wire_length() const noexcept;

  /// Presentation format without trailing dot; "." for the root.
  std::string to_string() const;

  auto operator<=>(const DnsName&) const noexcept = default;

 private:
  std::vector<std::string> labels_;  // stored lowercase
};

}  // namespace dnsbs::dns

template <>
struct std::hash<dnsbs::dns::DnsName> {
  std::size_t operator()(const dnsbs::dns::DnsName& n) const noexcept {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& label : n.labels()) {
      for (const char c : label) {
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
      }
      h = (h ^ 0xff) * 1099511628211ULL;  // label boundary
    }
    return h;
  }
};
