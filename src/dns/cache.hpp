// TTL-driven DNS cache simulation.
//
// Caching is the central confound in DNS backscatter (paper §II, §IV-D):
// recursive resolvers cache both the PTR answers and the NS delegation
// records of the reverse tree, so authorities higher in the hierarchy see a
// heavily attenuated sample of queriers.  CacheSim models one resolver's
// cache with real TTL semantics on a virtual clock, including negative
// caching (NXDOMAIN, RFC 2308).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "dns/name.hpp"
#include "dns/wire.hpp"
#include "util/time.hpp"

namespace dnsbs::dns {

/// Outcome of a cache probe.
enum class CacheResult {
  kMiss,         ///< nothing cached; resolver must ask upstream
  kHitPositive,  ///< cached answer still fresh
  kHitNegative,  ///< cached NXDOMAIN/NODATA still fresh
};

class CacheSim {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits_positive = 0;
    std::uint64_t hits_negative = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t expired_evictions = 0;
  };

  /// max_entries bounds memory; 0 means unbounded.  When full, expired
  /// entries are purged first; if still full, the entry closest to expiry
  /// is evicted (a reasonable stand-in for LRU under TTL workloads).
  explicit CacheSim(std::size_t max_entries = 0) : max_entries_(max_entries) {}

  /// Probes the cache at virtual time `now`; expired entries count as
  /// misses and are removed lazily.
  CacheResult lookup(const DnsName& name, QType type, util::SimTime now);

  /// Caches a positive answer valid for `ttl` seconds from `now`.
  /// ttl == 0 entries are never stored (the paper's controlled experiment
  /// sets PTR TTL to zero exactly to disable caching).
  void insert_positive(const DnsName& name, QType type, std::uint32_t ttl, util::SimTime now);

  /// Caches a negative (NXDOMAIN) answer for `ttl` seconds (the SOA
  /// MINIMUM-derived negative TTL).
  void insert_negative(const DnsName& name, QType type, std::uint32_t ttl, util::SimTime now);

  ~CacheSim();

  std::size_t size() const noexcept { return entries_.size(); }
  const Stats& stats() const noexcept { return stats_; }

  /// Publishes the stats accumulated since the last publish to the
  /// process-wide registry (dnsbs.cache.dns.*).  Idempotent; also runs on
  /// destruction, so per-lookup paths never touch the registry.
  void publish_metrics() noexcept;

  /// Drops every entry (resolver restart).
  void clear() noexcept { entries_.clear(); }

 private:
  struct Key {
    DnsName name;
    QType type;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<DnsName>{}(k.name) ^
             (static_cast<std::size_t>(k.type) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct Entry {
    util::SimTime expires;
    bool negative = false;
  };

  void store(Key key, Entry entry, util::SimTime now);
  void evict_one(util::SimTime now);

  std::size_t max_entries_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  Stats stats_;
  Stats published_;  ///< high-water mark of what publish_metrics() exported
};

}  // namespace dnsbs::dns
