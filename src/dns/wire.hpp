// DNS wire-format codec (RFC 1035 §4).
//
// The sensor normally consumes query logs, but a production deployment
// captures packets at the authority (paper §III-A), so the library ships a
// real message codec: header, question and RR sections, and name
// compression on both encode and decode (with pointer-loop protection).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "net/ipv4.hpp"

namespace dnsbs::dns {

enum class QType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kANY = 255,
};

enum class QClass : std::uint16_t { kIN = 1, kCH = 3, kANY = 255 };

enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNXDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

const char* to_string(QType t) noexcept;
const char* to_string(RCode r) noexcept;

struct Question {
  DnsName name;
  QType qtype = QType::kA;
  QClass qclass = QClass::kIN;

  bool operator==(const Question&) const = default;
};

/// RDATA variants we model: addresses (A), names (PTR/NS/CNAME), opaque.
struct RData {
  std::variant<net::IPv4Addr, DnsName, std::vector<std::uint8_t>> value;

  bool operator==(const RData&) const = default;
};

struct ResourceRecord {
  DnsName name;
  QType rtype = QType::kA;
  QClass rclass = QClass::kIN;
  std::uint32_t ttl = 0;
  RData rdata;

  bool operator==(const ResourceRecord&) const = default;
};

struct Message {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t opcode = 0;
  bool authoritative = false;
  bool truncated = false;
  bool recursion_desired = false;
  bool recursion_available = false;
  RCode rcode = RCode::kNoError;

  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  bool operator==(const Message&) const = default;

  /// Convenience: builds a PTR query for an originator address with the
  /// given id (recursion desired, as stub resolvers send).
  static Message ptr_query(std::uint16_t id, net::IPv4Addr originator);

  /// Convenience: builds a response to `query` with the given rcode and
  /// answers (copies the question section).
  static Message response_to(const Message& query, RCode rcode,
                             std::vector<ResourceRecord> answers = {});
};

/// Encodes a message; applies name compression across all sections.
/// Returns nullopt for messages the wire format cannot represent: a label
/// over 63 bytes or empty, a name over 255 octets, a section with more
/// than 65535 entries, or RDATA over 65535 bytes.  (Such messages cannot
/// come from decode(); they arise from hand-built DnsName::from_labels
/// values or oversized sections.)
std::optional<std::vector<std::uint8_t>> try_encode(const Message& msg);

/// As try_encode, but returns an empty vector on unencodable input (any
/// valid encoding is at least the 12 header bytes, so empty is
/// unambiguous).  Kept for call sites that encode known-valid messages.
std::vector<std::uint8_t> encode(const Message& msg);

/// Decodes a message; nullopt on malformed input (truncation, bad pointer,
/// label overflow, pointer loops).
std::optional<Message> decode(const std::vector<std::uint8_t>& wire);
std::optional<Message> decode(const std::uint8_t* data, std::size_t size);

}  // namespace dnsbs::dns
