// Query-log records: the raw input of the backscatter sensor.
//
// Whether captured from packets or from server logs (paper §III-A), each
// reverse query at an authority reduces to an
// (arrival time, querier address, QNAME) observation; the originator is
// recovered from the QNAME.  QueryRecord is that tuple plus the response
// outcome, and this header provides a line-oriented text serialization so
// logs can be written by the simulator and replayed through the pipeline.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dns/name.hpp"
#include "dns/wire.hpp"
#include "net/ipv4.hpp"
#include "util/time.hpp"

namespace dnsbs::dns {

struct QueryRecord {
  util::SimTime time;           ///< arrival at the authority
  net::IPv4Addr querier;        ///< source of the DNS packet
  net::IPv4Addr originator;     ///< decoded from the PTR QNAME
  RCode rcode = RCode::kNoError;///< authority's response outcome

  bool operator==(const QueryRecord&) const = default;
};

/// One record per line: "<secs>\t<querier>\t<originator>\t<rcode>".
std::string serialize(const QueryRecord& record);

/// Parses one line; nullopt on malformed input.
std::optional<QueryRecord> parse_record(std::string_view line);

/// Streams records to a text log.
class QueryLogWriter {
 public:
  explicit QueryLogWriter(std::ostream& os) : os_(os) {}
  void write(const QueryRecord& record);
  std::size_t count() const noexcept { return count_; }

 private:
  std::ostream& os_;
  std::size_t count_ = 0;
};

/// Reads records from a text log; malformed lines are counted and skipped
/// (real logs contain garbage; the pipeline must not fall over).
///
/// Telemetry: line/record tallies are kept locally (no atomics on the
/// per-line path) and published to dnsbs.parse.{lines,records} when the
/// stream ends, and again — idempotently — on destruction, so abandoned
/// readers still report what they consumed.
class QueryLogReader {
 public:
  explicit QueryLogReader(std::istream& is) : is_(is) {}
  ~QueryLogReader();

  /// Returns the next record or nullopt at end of stream.
  std::optional<QueryRecord> next();

  std::size_t skipped() const noexcept { return skipped_; }

 private:
  void publish_metrics();

  std::istream& is_;
  std::string line_;  ///< reused across records: one allocation per reader
  std::size_t skipped_ = 0;
  std::size_t lines_ = 0;
  std::size_t records_ = 0;
  std::size_t published_lines_ = 0;
  std::size_t published_records_ = 0;
};

/// Convenience: parses a whole log; malformed lines are skipped.
std::vector<QueryRecord> read_all(std::istream& is);

}  // namespace dnsbs::dns
