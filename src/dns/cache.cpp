#include "dns/cache.hpp"

#include "util/metrics.hpp"

namespace dnsbs::dns {

namespace {
// Registry mirror of CacheSim::Stats, summed over every simulated resolver
// cache.  Lookups only touch the local struct; deltas are published on
// destruction (or explicit publish_metrics()).
util::MetricCounter& g_lookups = util::metrics_counter("dnsbs.cache.dns.lookups");
util::MetricCounter& g_hits_pos = util::metrics_counter("dnsbs.cache.dns.hits_positive");
util::MetricCounter& g_hits_neg = util::metrics_counter("dnsbs.cache.dns.hits_negative");
util::MetricCounter& g_misses = util::metrics_counter("dnsbs.cache.dns.misses");
util::MetricCounter& g_inserts = util::metrics_counter("dnsbs.cache.dns.inserts");
util::MetricCounter& g_expired = util::metrics_counter("dnsbs.cache.dns.expired_evictions");
}  // namespace

CacheSim::~CacheSim() { publish_metrics(); }

void CacheSim::publish_metrics() noexcept {
  g_lookups.add(stats_.lookups - published_.lookups);
  g_hits_pos.add(stats_.hits_positive - published_.hits_positive);
  g_hits_neg.add(stats_.hits_negative - published_.hits_negative);
  g_misses.add(stats_.misses - published_.misses);
  g_inserts.add(stats_.inserts - published_.inserts);
  g_expired.add(stats_.expired_evictions - published_.expired_evictions);
  published_ = stats_;
}

CacheResult CacheSim::lookup(const DnsName& name, QType type, util::SimTime now) {
  ++stats_.lookups;
  const auto it = entries_.find(Key{name, type});
  if (it == entries_.end()) {
    ++stats_.misses;
    return CacheResult::kMiss;
  }
  if (it->second.expires <= now) {
    entries_.erase(it);
    ++stats_.expired_evictions;
    ++stats_.misses;
    return CacheResult::kMiss;
  }
  if (it->second.negative) {
    ++stats_.hits_negative;
    return CacheResult::kHitNegative;
  }
  ++stats_.hits_positive;
  return CacheResult::kHitPositive;
}

void CacheSim::insert_positive(const DnsName& name, QType type, std::uint32_t ttl,
                               util::SimTime now) {
  if (ttl == 0) return;
  store(Key{name, type}, Entry{now + util::SimTime::seconds(ttl), false}, now);
}

void CacheSim::insert_negative(const DnsName& name, QType type, std::uint32_t ttl,
                               util::SimTime now) {
  if (ttl == 0) return;
  store(Key{name, type}, Entry{now + util::SimTime::seconds(ttl), true}, now);
}

void CacheSim::store(Key key, Entry entry, util::SimTime now) {
  ++stats_.inserts;
  if (max_entries_ != 0 && entries_.size() >= max_entries_ &&
      entries_.find(key) == entries_.end()) {
    evict_one(now);
  }
  entries_[std::move(key)] = entry;
}

void CacheSim::evict_one(util::SimTime now) {
  // Purge anything already expired; otherwise drop the soonest-to-expire.
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires <= now) {
      it = entries_.erase(it);
      ++stats_.expired_evictions;
      return;
    }
    if (victim == entries_.end() || it->second.expires < victim->second.expires) {
      victim = it;
    }
    ++it;
  }
  if (victim != entries_.end()) entries_.erase(victim);
}

}  // namespace dnsbs::dns
