#include "dns/reverse.hpp"

#include "util/strings.hpp"

namespace dnsbs::dns {

const DnsName& in_addr_arpa() {
  static const DnsName name = *DnsName::parse("in-addr.arpa");
  return name;
}

DnsName reverse_name(net::IPv4Addr addr) {
  return DnsName::from_labels({std::to_string(addr.octet(3)), std::to_string(addr.octet(2)),
                               std::to_string(addr.octet(1)), std::to_string(addr.octet(0)),
                               "in-addr", "arpa"});
}

std::optional<net::IPv4Addr> address_from_reverse(const DnsName& qname) {
  if (qname.label_count() != 6 || !qname.ends_in(in_addr_arpa())) return std::nullopt;
  std::uint32_t value = 0;
  // Labels are reversed: label(0) is the low octet.
  for (int i = 3; i >= 0; --i) {
    std::uint64_t octet = 0;
    const auto& label = qname.label(static_cast<std::size_t>(i));
    if (!util::parse_u64(label, octet) || octet > 255 || label.size() > 3) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return net::IPv4Addr(value);
}

bool is_reverse_name(const DnsName& name) { return name.ends_in(in_addr_arpa()); }

DnsName reverse_zone(net::IPv4Addr addr, ReverseZoneLevel level) {
  switch (level) {
    case ReverseZoneLevel::kRoot:
      return in_addr_arpa();
    case ReverseZoneLevel::kSlash8:
      return in_addr_arpa().child(std::to_string(addr.octet(0)));
    case ReverseZoneLevel::kSlash16:
      return in_addr_arpa()
          .child(std::to_string(addr.octet(0)))
          .child(std::to_string(addr.octet(1)));
    case ReverseZoneLevel::kSlash24:
      return in_addr_arpa()
          .child(std::to_string(addr.octet(0)))
          .child(std::to_string(addr.octet(1)))
          .child(std::to_string(addr.octet(2)));
  }
  return in_addr_arpa();
}

net::Prefix zone_prefix(net::IPv4Addr addr, ReverseZoneLevel level) {
  switch (level) {
    case ReverseZoneLevel::kRoot: return net::Prefix(net::IPv4Addr(0), 0);
    case ReverseZoneLevel::kSlash8: return net::Prefix(addr, 8);
    case ReverseZoneLevel::kSlash16: return net::Prefix(addr, 16);
    case ReverseZoneLevel::kSlash24: return net::Prefix(addr, 24);
  }
  return net::Prefix(net::IPv4Addr(0), 0);
}

}  // namespace dnsbs::dns
